// Package engine is the shared inference core of the DS-GL reproduction.
//
// PR 3 mirrored the whole clamp-plan inference stack — InferState arenas,
// observation validation, plan compilation + LRU caching, observer plumbing,
// batch fan-out, result detachment — into both internal/scalable and
// internal/dspu, and the two copies had to be kept bit-for-bit in sync by
// hand. This package extracts that machinery once: a Backend supplies the
// node dynamics (dimension, rails, clamp-plan compilation, the anneal loops
// themselves, energy/residual hooks) and the Engine owns everything around
// them:
//
//   - the InferState lifecycle (per-worker scratch arenas, reusable across
//     inferences, allocation-free in the steady state);
//   - observation validation — index range, rail bound, duplicate rejection
//     — one implementation shared by every entry point including EnsurePlan;
//   - the clamp-plan cache: compiled plans keyed by the packed
//     observation-index bitmask, bounded LRU (internal/lru) behind a
//     lock-free read snapshot; compilation happens OUTSIDE the cache lock
//     with per-key singleflight, so concurrent batch workers neither
//     serialize on a compile nor duplicate one (hit/miss counters stay
//     deterministic: a pattern's first resolution is the one miss, every
//     other resolution — snapshot hit, LRU hit, or singleflight wait — is
//     a hit);
//   - the seeding convention: window i of a batch anneals with seed
//     BaseSeed()+i, which is what makes InferBatch bit-identical to a
//     sequential loop for any worker count;
//   - observer dispatch types (StepInfo with a lazy EnergyFn) and Result
//     detachment.
//
// The related-work lineage (BRIM's bistable CMOS nodes, oscillator-based
// Ising machines) runs the same clamp-anneal-readout loop over very
// different node dynamics; a new backend implements the Backend contract
// and inherits the whole engine layer — validation, caching, batching,
// verification hooks — without copying any of it.
//
// Bit-exactness discipline: the Engine never touches the floating-point
// path of an anneal. It seeds the state RNG, fills the initial voltages
// (uniform in [-0.1, 0.1), exactly the pre-extraction convention), writes
// the clamp values, and hands off to the backend's RunPlanned/RunNaive. A
// backend extracted onto this engine therefore produces bit-identical
// results to its pre-extraction form — enforced for the scalable backend by
// the golden-voltage regression fixture and the nine verify invariants.
// The sharded anneal path (InferSharded*) is the one deliberate exception:
// it is deterministic per seed but only tolerance-equivalent to the exact
// path, a contract the sharded-fixed-point invariant verifies.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dsgl/internal/pool"
)

// PlanCacheCapacity bounds the per-engine clamp-plan LRU cache. Eight
// patterns cover the realistic mix (one pattern per dataset windowing, a
// few for ad-hoc probes) while keeping the worst-case memory at eight
// sparsified copies of the coupling matrices.
const PlanCacheCapacity = 8

// Backend is the contract a dynamical-system simulator implements to be
// driven by the engine. All methods except RunPlanned and RunNaive must be
// safe for concurrent use; the Run* methods are called with a per-worker
// InferState and may only mutate that state (plus backend-owned immutable
// data), which is what makes InferBatch race-free.
type Backend interface {
	// Name prefixes error messages ("scalable", "dspu") and names the
	// backend in CLIs and reports.
	Name() string
	// Dim is the state dimension (node count).
	Dim() int
	// Rails is the voltage rail bound: observations with |value| beyond it
	// are rejected before the anneal starts.
	Rails() float64
	// BaseSeed is the backend's configured seed; window i of a batch runs
	// with BaseSeed()+i.
	BaseSeed() uint64
	// CompilePlan compiles the clamp-index pattern into a backend-specific
	// inference plan. Plans depend only on WHICH nodes are clamped, never
	// on the clamp values, must be immutable after compilation, and are
	// shared freely across workers. The engine caches them by packed mask.
	CompilePlan(clamped []bool) any
	// AttachState allocates the backend's scratch arena into st.Scratch
	// (and may rebind st.EnergyFn). Called once per InferState, from
	// NewInferState.
	AttachState(st *InferState)
	// RunPlanned runs one anneal on a prepared state (st.X holds initial
	// voltages with observations clamped, st.Clamped/ClampIdx the clamp
	// pattern, st.RNG the seeded noise stream) under a plan previously
	// returned by CompilePlan. It writes st.Res and returns &st.Res.
	RunPlanned(st *InferState, plan any) (*Result, error)
	// RunNaive is the naive reference anneal: no clamp plan, every coupling
	// re-evaluated in full. It is the ground truth the plan-naive-identity
	// invariant verifies RunPlanned against.
	RunNaive(st *InferState) (*Result, error)
	// EnergyAt evaluates the backend's Hamiltonian at state x; the engine
	// binds it into the lazy StepInfo.EnergyFn handed to observers.
	EnergyAt(x []float64) float64
	// ResidualAt evaluates the true (noise-free, all-couplings-fresh)
	// equilibrium residual max |dσ/dt| at x, skipping clamped nodes.
	ResidualAt(x []float64, clamped []bool) (float64, error)
	// SettleResidualTol is the residual bound a Settled result guarantees.
	SettleResidualTol() float64
}

// ShardedBackend is the optional Backend extension for the intra-inference
// sharded anneal: the backend partitions its graph (by Louvain
// super-community groups in the scalable machine) and anneals every
// partition on its own goroutine, exchanging cross-partition coupling
// contributions at a configured sync interval. Backends that cannot shard
// (the dense DSPU) simply do not implement the interface; the engine's
// InferSharded* entry points then run the exact planned path.
type ShardedBackend interface {
	Backend
	// CompileShardedPlan compiles the clamp pattern into a sharded
	// inference plan, or returns nil when this machine cannot shard
	// (sharding disabled, single community, noise enabled, or the clamp
	// pattern leaves fewer than two partitions with free nodes). Like
	// CompilePlan the result depends only on WHICH nodes are clamped, is
	// immutable, and is cached by the engine (nil included, so the
	// shardability decision is made once per pattern residency).
	CompileShardedPlan(clamped []bool) any
	// RunSharded runs the partitioned anneal on a prepared state under a
	// non-nil plan previously returned by CompileShardedPlan. Same state
	// contract as RunPlanned; Result.Switches counts cross-shard sync
	// rounds.
	RunSharded(st *InferState, plan any) (*Result, error)
	// ShardCount reports how many partitions the sharded path would run
	// (0 or 1 when sharding is unavailable) — telemetry and warm-up
	// gating, never correctness.
	ShardCount() int
}

// Engine drives inference for one Backend: validation, plan caching,
// seeding, and batch fan-out. Safe for concurrent use.
type Engine struct {
	b Backend

	// plans is the clamp-plan cache: a bounded LRU behind a lock-free read
	// snapshot, per-key singleflight compilation, deterministic hit/miss
	// counters. The machinery lives in plancache.go because the OptEngine
	// resolves its schedule plans through the identical cache.
	plans planCache

	// Streaming plan-delta counters (stream.go): hits patched a
	// predecessor plan on a shifted pattern's cache miss, fallbacks fully
	// compiled one.
	planDeltaHits      atomic.Uint64
	planDeltaFallbacks atomic.Uint64

	// states recycles InferStates across InferBatch calls so repeated
	// batch windows stop re-allocating per-worker scratch arenas. Reuse is
	// safe because every inference fully re-seeds the state (voltages,
	// clamp mask, RNG, backend scratch).
	states freeList[*InferState]

	// EnsurePlan scratch: validating a probe pattern must not allocate a
	// fresh mask and key per call (EnsurePlan runs once per evaluation,
	// but sweeps call it per configuration).
	ensureMu      sync.Mutex
	ensureClamped []bool
	ensureKey     []byte

	// obsBind caches the instrument binding against the current default
	// obs registry; see metrics.go. Nil until the first inference.
	obsBind atomic.Pointer[engineObs]
}

// New binds an engine to its backend.
func New(b Backend) *Engine { return &Engine{b: b} }

// Backend returns the backend this engine drives.
func (e *Engine) Backend() Backend { return e.b }

// BaseSeed returns the backend's configured base seed (window i of a batch
// anneals with BaseSeed()+i).
func (e *Engine) BaseSeed() uint64 { return e.b.BaseSeed() }

// Infer clamps the observations, initializes free nodes near zero, and
// anneals to equilibrium with the backend's base seed. A fresh scratch
// state is allocated per call; use InferWith for the allocation-free path.
func (e *Engine) Infer(obs []Observation) (*Result, error) {
	return e.InferSeeded(obs, e.b.BaseSeed())
}

// InferSeeded is Infer with an explicit seed for free-node initialization
// and noise. The batch engine gives window w the seed BaseSeed()+w so a
// parallel batch is bit-identical to a sequential loop over the windows.
func (e *Engine) InferSeeded(obs []Observation, seed uint64) (*Result, error) {
	res, err := e.InferWith(e.NewInferState(), obs, seed)
	if err != nil {
		return nil, err
	}
	return res.Detach(), nil
}

// InferFrom runs inference from an explicit initial state.
func (e *Engine) InferFrom(x0 []float64, obs []Observation) (*Result, error) {
	if len(x0) != e.b.Dim() {
		return nil, fmt.Errorf("%s: initial state has %d entries, want %d", e.b.Name(), len(x0), e.b.Dim())
	}
	st := e.NewInferState()
	copy(st.X, x0)
	st.RNG.Reseed(e.b.BaseSeed())
	res, err := e.inferInto(st, obs)
	if err != nil {
		return nil, err
	}
	return res.Detach(), nil
}

// InferWith runs one inference on a reusable scratch state with an explicit
// seed. After the state's first use the whole call — initialization, anneal
// loop, residual checks, result — performs zero heap allocations. The
// returned Result aliases the state's buffers (see InferState.Result).
func (e *Engine) InferWith(st *InferState, obs []Observation, seed uint64) (*Result, error) {
	if err := e.checkState(st); err != nil {
		return nil, err
	}
	st.RNG.Reseed(seed)
	st.RNG.FillUniform(st.X, -0.1, 0.1)
	return e.inferInto(st, obs)
}

// InferWithNaive is InferWith running the backend's naive reference loop:
// no clamp plan, every coupling re-evaluated in full each step. The
// plan-naive-identity invariant asserts InferWith and InferWithNaive return
// bit-identical Results for every seed; benchmarks use this entry as the
// pre-folding baseline.
func (e *Engine) InferWithNaive(st *InferState, obs []Observation, seed uint64) (*Result, error) {
	if err := e.checkState(st); err != nil {
		return nil, err
	}
	m := e.metrics()
	var start time.Time
	if m.enabled() {
		start = time.Now()
	}
	st.RNG.Reseed(seed)
	st.RNG.FillUniform(st.X, -0.1, 0.1)
	if err := st.applyObservations(obs); err != nil {
		m.recordInfer(nil, err, start)
		return nil, err
	}
	res, err := e.b.RunNaive(st)
	m.recordInfer(res, err, start)
	return res, err
}

// InferSeededNaive is InferSeeded running the naive reference loop.
func (e *Engine) InferSeededNaive(obs []Observation, seed uint64) (*Result, error) {
	res, err := e.InferWithNaive(e.NewInferState(), obs, seed)
	if err != nil {
		return nil, err
	}
	return res.Detach(), nil
}

// InferBatch anneals every observation set of a batch across a pool of
// workers (workers <= 0 selects runtime.GOMAXPROCS(0)) and returns one
// Result per entry, in order. Each worker owns a private InferState drawn
// from the engine's free-list (allocated on the first batch, recycled
// across batches), so the per-window steady state allocates nothing;
// window i is seeded BaseSeed()+i, making the output bit-identical to
// calling InferSeeded(obs[i], BaseSeed()+i) sequentially — regardless of
// worker count or scheduling.
func (e *Engine) InferBatch(obs [][]Observation, workers int) ([]*Result, error) {
	base := e.b.BaseSeed()
	return e.runBatch(obs, workers, e.InferWith, func(i int) uint64 { return base + uint64(i) })
}

// InferBatchSeeds is InferBatch with an explicit anneal seed per window:
// window i runs with seeds[i] instead of BaseSeed()+i. This is the entry
// point the serving layer's cross-request coalescing rides on — requests
// that arrive with their own seeds are fanned out together yet each anneal
// is bit-identical to the solo InferSeeded(obs[i], seeds[i]) call, because
// the seed is the only per-window input the engine contributes.
func (e *Engine) InferBatchSeeds(obs [][]Observation, seeds []uint64, workers int) ([]*Result, error) {
	if len(seeds) != len(obs) {
		return nil, fmt.Errorf("%s: batch has %d observation sets but %d seeds", e.b.Name(), len(obs), len(seeds))
	}
	return e.runBatch(obs, workers, e.InferWith, func(i int) uint64 { return seeds[i] })
}

// InferShardedBatch is InferBatch over the sharded anneal path (see
// InferShardedWith): windows fan out across batch workers and each window's
// anneal additionally fans out across graph shards. Seeding and ordering
// semantics are identical to InferBatch; on a backend without sharding the
// two entry points return bit-identical results.
func (e *Engine) InferShardedBatch(obs [][]Observation, workers int) ([]*Result, error) {
	base := e.b.BaseSeed()
	return e.runBatch(obs, workers, e.InferShardedWith, func(i int) uint64 { return base + uint64(i) })
}

// runBatch is the shared batch fan-out: acquire one pooled state per
// worker, run every window through infer at seed seedOf(i), return the
// states to the free-list, and surface the first error in window order.
func (e *Engine) runBatch(obs [][]Observation, workers int, infer func(*InferState, []Observation, uint64) (*Result, error), seedOf func(int) uint64) ([]*Result, error) {
	n := len(obs)
	results := make([]*Result, n)
	errs := make([]error, n)
	w := pool.Clamp(workers, n)
	states := make([]*InferState, w)
	for i := range states {
		states[i] = e.getState()
	}
	if m := e.metrics(); m.enabled() {
		m.batches.Inc()
		m.batchWindows.Add(uint64(n))
		m.batchWorkers.Set(float64(w))
	}
	pool.RunWorkers(w, n, func(worker, i int) {
		res, err := infer(states[worker], obs[i], seedOf(i))
		if err != nil {
			errs[i] = err
			return
		}
		results[i] = res.Detach()
	})
	for _, st := range states {
		e.putState(st)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// getState draws a reusable InferState from the engine free-list,
// allocating a fresh one only when the pool is dry.
func (e *Engine) getState() *InferState {
	if st, ok := e.states.get(); ok {
		e.metrics().statePoolHits.Inc()
		return st
	}
	e.metrics().statePoolMisses.Inc()
	return e.NewInferState()
}

// putState returns a batch state to the free-list. Observers never
// survive pooling: a recycled state must behave exactly like a fresh one.
func (e *Engine) putState(st *InferState) {
	st.Observer = nil
	e.states.put(st)
}

// EnsurePlan validates the observation set (the same range / rail /
// duplicate checks every inference entry point runs) and compiles (or
// re-warms) the clamp plan for its index pattern, so that a subsequent
// batch over windows sharing the pattern starts with a cache hit on every
// worker. Values are validated but never stored — plans depend on indices
// only.
func (e *Engine) EnsurePlan(obs []Observation) error {
	e.ensureMu.Lock()
	defer e.ensureMu.Unlock()
	n := e.b.Dim()
	if e.ensureClamped == nil {
		e.ensureClamped = make([]bool, n)
		e.ensureKey = make([]byte, maskBytes(n)+1)
	}
	if err := validateObservations(e.b.Name(), obs, n, e.b.Rails(), nil, e.ensureClamped, nil); err != nil {
		return err
	}
	e.planFor(e.ensureClamped, packMask(e.ensureClamped, e.ensureKey)[:maskBytes(n)], e.b.CompilePlan)
	// Warm the sharded variant too when the backend actually shards, so a
	// sharded batch starts hot on every worker as well.
	if sb, ok := e.b.(ShardedBackend); ok && sb.ShardCount() >= 2 {
		key := packMask(e.ensureClamped, e.ensureKey)
		key[len(key)-1] = shardPlanTag
		e.planFor(e.ensureClamped, key, sb.CompileShardedPlan)
	}
	return nil
}

// PlanCacheStats reports the cumulative clamp-plan cache hit and miss
// counts. A miss compiles a plan; the steady state of a batch whose windows
// share one observation pattern is all hits.
func (e *Engine) PlanCacheStats() (hits, misses uint64) {
	return e.plans.stats()
}

// PlanCacheLen reports how many compiled plans are currently resident
// (bounded by PlanCacheCapacity).
func (e *Engine) PlanCacheLen() int {
	return e.plans.resident()
}

// checkState guards the reusable-state entry points against nil or foreign
// states.
func (e *Engine) checkState(st *InferState) error {
	if st == nil || st.eng != e {
		return fmt.Errorf("%s: InferState belongs to a different engine", e.b.Name())
	}
	return nil
}

// inferInto resolves the observation pattern to a compiled clamp plan
// (cache hit in the steady state) and runs the backend's planned anneal on
// the prepared state. The result is bit-identical to the naive path — the
// plan only reorganizes which floating-point operations are hoisted, never
// their order (the backends' compilation discipline).
func (e *Engine) inferInto(st *InferState, obs []Observation) (*Result, error) {
	m := e.metrics()
	var start time.Time
	if m.enabled() {
		start = time.Now()
	}
	if err := st.applyObservations(obs); err != nil {
		m.recordInfer(nil, err, start)
		return nil, err
	}
	pl := e.planFor(st.Clamped, packMask(st.Clamped, st.KeyBuf)[:maskBytes(len(st.X))], e.b.CompilePlan)
	res, err := e.b.RunPlanned(st, pl)
	m.recordInfer(res, err, start)
	return res, err
}

// InferShardedWith is InferWith over the backend's sharded anneal path:
// the graph partitions anneal concurrently, exchanging cross-partition
// contributions at the backend's sync interval. It falls back to the exact
// planned path when the backend does not shard (ShardedBackend not
// implemented, or CompileShardedPlan declined this pattern) or when a step
// observer is installed — the sharded loop dispatches no observers.
// Sharded runs are deterministic for a fixed seed, so batches and repeated
// calls reproduce bit-identically; they are tolerance-equivalent (not
// bit-identical) to the exact path, the contract the sharded-fixed-point
// verify invariant enforces.
func (e *Engine) InferShardedWith(st *InferState, obs []Observation, seed uint64) (*Result, error) {
	if err := e.checkState(st); err != nil {
		return nil, err
	}
	sb, ok := e.b.(ShardedBackend)
	if !ok || st.Observer != nil {
		return e.InferWith(st, obs, seed)
	}
	st.RNG.Reseed(seed)
	st.RNG.FillUniform(st.X, -0.1, 0.1)
	m := e.metrics()
	var start time.Time
	if m.enabled() {
		start = time.Now()
	}
	if err := st.applyObservations(obs); err != nil {
		m.recordInfer(nil, err, start)
		return nil, err
	}
	key := packMask(st.Clamped, st.KeyBuf)
	key[len(key)-1] = shardPlanTag
	pl := e.planFor(st.Clamped, key, sb.CompileShardedPlan)
	if pl == nil {
		// The backend declined to shard this pattern: run the exact path
		// on the already-prepared state.
		epl := e.planFor(st.Clamped, packMask(st.Clamped, st.KeyBuf)[:maskBytes(len(st.X))], e.b.CompilePlan)
		res, err := e.b.RunPlanned(st, epl)
		m.recordInfer(res, err, start)
		return res, err
	}
	res, err := sb.RunSharded(st, pl)
	m.recordInfer(res, err, start)
	if err == nil && m.enabled() {
		m.shardInfers.Inc()
		m.shardSyncRounds.Add(uint64(res.Switches))
		m.shardAnnealSteps.Add(uint64(res.Steps))
		m.shardWorkers.Set(float64(sb.ShardCount()))
	}
	return res, err
}

// InferShardedSeeded is InferSeeded over the sharded anneal path; see
// InferShardedWith for fallback and determinism semantics.
func (e *Engine) InferShardedSeeded(obs []Observation, seed uint64) (*Result, error) {
	res, err := e.InferShardedWith(e.NewInferState(), obs, seed)
	if err != nil {
		return nil, err
	}
	return res.Detach(), nil
}

// shardPlanTag distinguishes sharded-plan cache keys from exact-plan keys:
// exact keys are the bare maskBytes(n) bitmask, sharded keys carry one
// trailing tag byte. Both variants of one pattern can be resident at once.
const shardPlanTag = 1

// planFor resolves the clamp pattern to a compiled plan through the shared
// plan cache (see plancache.go for the lock-free warm path, the per-key
// singleflight compile, and the counter-determinism guarantee).
func (e *Engine) planFor(clamped []bool, key []byte, compile func([]bool) any) any {
	m := e.metrics()
	return e.plans.resolve(key, func() any { return compile(clamped) }, m.planObs())
}

// maskBytes is the packed-bitmask length for n nodes.
func maskBytes(n int) int { return (n + 7) / 8 }

// packMask packs the clamp mask into buf as a little-endian bitmask — the
// plan-cache key. buf must have at least maskBytes(len(clamped)) bytes;
// any extra bytes (the sharded-plan tag slot) are zeroed.
func packMask(clamped []bool, buf []byte) []byte {
	for i := range buf {
		buf[i] = 0
	}
	for i, c := range clamped {
		if c {
			buf[i>>3] |= 1 << (i & 7)
		}
	}
	return buf
}
