package engine

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

// deltaStub extends stubBackend with delta-compilation so the stream tests
// can pin when the engine asks for a patch versus a full compile.
type deltaStub struct {
	stubBackend
	deltas  atomic.Int64
	decline bool
}

func (d *deltaStub) CompilePlanDelta(prev any, oldClamped, newClamped []bool) any {
	d.deltas.Add(1)
	if d.decline {
		return nil
	}
	if _, ok := prev.(*stubPlan); !ok {
		return nil
	}
	pl := &stubPlan{}
	for i, c := range newClamped {
		if !c {
			pl.free = append(pl.free, i)
		}
	}
	return pl
}

func newDeltaStub(n int) (*deltaStub, *Engine) {
	b := &deltaStub{stubBackend: stubBackend{n: n, rails: 1, seed: 11}}
	return b, New(b)
}

func TestStreamFirstTickMatchesInferWith(t *testing.T) {
	_, e := newStub(6)
	obs := []Observation{{Index: 1, Value: 0.5}}
	ref, err := e.InferSeeded(obs, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Detach()
	s := e.OpenStream()
	defer s.Close()
	got, err := s.Tick(obs, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Voltage {
		if math.Float64bits(got.Voltage[i]) != math.Float64bits(want.Voltage[i]) {
			t.Fatalf("cold first tick diverges from InferSeeded at node %d: %v vs %v",
				i, got.Voltage[i], want.Voltage[i])
		}
	}
	if !s.Started() {
		t.Fatal("Started false after first tick")
	}
}

func TestStreamWarmStartKeepsSettledState(t *testing.T) {
	_, e := newStub(4)
	s := e.OpenStream()
	defer s.Close()
	r1, err := s.Tick([]Observation{{Index: 0, Value: 0.5}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 is free on both ticks: its warm init is tick 1's settled value,
	// and the stub halves every free node twice per run.
	prev := r1.Voltage[2]
	prevClamped := r1.Voltage[0]
	r2, err := s.Tick([]Observation{{Index: 1, Value: 0.25}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r2.Voltage[2], prev*0.25; math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("free node not warm-started: got %v, want %v (prev %v quartered)", got, want, prev)
	}
	// Node 0 unclamped between ticks: it keeps its clamped value as init.
	if got, want := r2.Voltage[0], prevClamped*0.25; math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("released node init wrong: got %v, want %v", got, want)
	}
	// Node 1 is freshly clamped and pinned.
	if r2.Voltage[1] != 0.25 {
		t.Fatalf("clamped node moved: %v", r2.Voltage[1])
	}
	// A warm tick is not a cold inference: same obs and seed from a fresh
	// random init lands elsewhere.
	cold, err := e.InferSeeded([]Observation{{Index: 1, Value: 0.25}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(cold.Voltage[2]) == math.Float64bits(r2.Voltage[2]) {
		t.Fatal("warm tick matched a cold inference; warm start did not happen")
	}
}

func TestStreamDeltaHitOnShiftedPattern(t *testing.T) {
	b, e := newDeltaStub(8)
	s := e.OpenStream()
	defer s.Close()
	if _, err := s.Tick([]Observation{{Index: 0, Value: 0.1}}, 1); err != nil {
		t.Fatal(err)
	}
	if got := b.deltas.Load(); got != 0 {
		t.Fatalf("cold tick asked for %d deltas, want 0", got)
	}
	// Slide the window: one leaves, one enters. The new pattern misses the
	// cache and resolves by patching the predecessor plan.
	if _, err := s.Tick([]Observation{{Index: 1, Value: 0.1}}, 2); err != nil {
		t.Fatal(err)
	}
	if hits, fallbacks := e.PlanDeltaStats(); hits != 1 || fallbacks != 0 {
		t.Fatalf("hits=%d fallbacks=%d after shift, want 1/0", hits, fallbacks)
	}
	if got := b.compiles.Load(); got != 1 {
		t.Fatalf("backend fully compiled %d plans, want 1 (cold tick only)", got)
	}
	// Repeating the pattern is a plain cache hit: no delta, no compile.
	if _, err := s.Tick([]Observation{{Index: 1, Value: 0.2}}, 3); err != nil {
		t.Fatal(err)
	}
	if hits, fallbacks := e.PlanDeltaStats(); hits != 1 || fallbacks != 0 {
		t.Fatalf("cache hit moved delta counters: hits=%d fallbacks=%d", hits, fallbacks)
	}
	// Sliding back to the first pattern also hits the cache.
	if _, err := s.Tick([]Observation{{Index: 0, Value: 0.3}}, 4); err != nil {
		t.Fatal(err)
	}
	if got := b.deltas.Load(); got != 1 {
		t.Fatalf("delta compiler ran %d times, want 1", got)
	}
}

func TestStreamDeltaDeclineFallsBack(t *testing.T) {
	b, e := newDeltaStub(8)
	b.decline = true
	s := e.OpenStream()
	defer s.Close()
	if _, err := s.Tick([]Observation{{Index: 0, Value: 0.1}}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick([]Observation{{Index: 1, Value: 0.1}}, 2); err != nil {
		t.Fatal(err)
	}
	if hits, fallbacks := e.PlanDeltaStats(); hits != 0 || fallbacks != 1 {
		t.Fatalf("hits=%d fallbacks=%d after declined delta, want 0/1", hits, fallbacks)
	}
	if got := b.compiles.Load(); got != 2 {
		t.Fatalf("backend compiled %d plans, want 2 (cold + fallback)", got)
	}
}

func TestStreamEvictedPredecessorFallsBack(t *testing.T) {
	b, e := newDeltaStub(64)
	s := e.OpenStream()
	defer s.Close()
	if _, err := s.Tick([]Observation{{Index: 0, Value: 0.1}}, 1); err != nil {
		t.Fatal(err)
	}
	// Churn the predecessor pattern out of the LRU with unrelated patterns.
	for p := 0; p < PlanCacheCapacity+1; p++ {
		if _, err := e.InferSeeded([]Observation{{Index: 10 + p, Value: 0.1}}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Tick([]Observation{{Index: 1, Value: 0.1}}, 2); err != nil {
		t.Fatal(err)
	}
	if hits, fallbacks := e.PlanDeltaStats(); hits != 0 || fallbacks != 1 {
		t.Fatalf("hits=%d fallbacks=%d with evicted predecessor, want 0/1", hits, fallbacks)
	}
	if got := b.deltas.Load(); got != 0 {
		t.Fatalf("delta compiler ran %d times against an evicted predecessor, want 0", got)
	}
}

func TestStreamNonDeltaBackendNeverCountsDeltas(t *testing.T) {
	b, e := newStub(8)
	s := e.OpenStream()
	defer s.Close()
	for i := 0; i < 3; i++ {
		if _, err := s.Tick([]Observation{{Index: i, Value: 0.1}}, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if hits, fallbacks := e.PlanDeltaStats(); hits != 0 || fallbacks != 0 {
		t.Fatalf("plain backend moved delta counters: hits=%d fallbacks=%d", hits, fallbacks)
	}
	if got := b.compiles.Load(); got != 3 {
		t.Fatalf("backend compiled %d plans, want 3", got)
	}
}

func TestStreamClosedAndForeign(t *testing.T) {
	_, e1 := newStub(4)
	_, e2 := newStub(4)
	s := e1.OpenStream()
	s.Close()
	s.Close() // idempotent
	if _, err := s.Tick(nil, 1); err == nil || !strings.Contains(err.Error(), "closed stream") {
		t.Fatalf("closed stream: got %v", err)
	}
	s2 := e1.OpenStream()
	defer s2.Close()
	if _, err := e2.InferShifted(s2, nil, 1); err == nil || !strings.Contains(err.Error(), "different engine") {
		t.Fatalf("foreign stream: got %v", err)
	}
	if _, err := e2.InferShifted(nil, nil, 1); err == nil {
		t.Fatal("nil stream accepted")
	}
}

func TestStreamTickValidatesObservations(t *testing.T) {
	_, e := newStub(4)
	s := e.OpenStream()
	defer s.Close()
	if _, err := s.Tick([]Observation{{Index: 9, Value: 0}}, 1); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("bad observation: got %v", err)
	}
}

// TestStreamHotPlanSurvivesSlidingMaskChurn is the capacity-pressure
// regression for the plan LRU: a sliding streaming mask mints one new
// pattern per tick, and that churn must not evict a hot spatial plan that
// keeps being used between ticks. Recency bumps on cache hits are what
// keeps it resident; if they regress, the hot pattern recompiles.
func TestStreamHotPlanSurvivesSlidingMaskChurn(t *testing.T) {
	b, e := newDeltaStub(128)
	hot := []Observation{{Index: 100, Value: 0.5}, {Index: 101, Value: -0.5}}
	if _, err := e.InferSeeded(hot, 1); err != nil {
		t.Fatal(err)
	}
	if got := b.compiles.Load(); got != 1 {
		t.Fatalf("hot pattern compiled %d times, want 1", got)
	}
	s := e.OpenStream()
	defer s.Close()
	const W = 3 * PlanCacheCapacity
	for w := 0; w < W; w++ {
		if _, err := s.Tick([]Observation{{Index: w, Value: 0.1}}, uint64(w)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.InferSeeded(hot, uint64(w)); err != nil {
			t.Fatal(err)
		}
	}
	// Full compiles: the hot plan once, the stream's cold first tick once.
	// Every later tick resolved its fresh pattern by delta, and the hot
	// pattern never recompiled despite W distinct patterns flowing through
	// an 8-slot cache.
	if got := b.compiles.Load(); got != 2 {
		t.Fatalf("sliding-mask churn forced %d full compiles, want 2 (hot plan evicted?)", got)
	}
	hits, fallbacks := e.PlanDeltaStats()
	if fallbacks != 0 {
		t.Fatalf("%d delta fallbacks during churn, want 0", fallbacks)
	}
	if hits != W-1 {
		t.Fatalf("delta hits %d, want %d", hits, W-1)
	}
	if n := e.PlanCacheLen(); n != PlanCacheCapacity {
		t.Fatalf("cache holds %d plans, cap %d", n, PlanCacheCapacity)
	}
}
