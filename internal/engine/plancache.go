package engine

import (
	"sync"
	"sync/atomic"

	"dsgl/internal/lru"
	"dsgl/internal/obs"
)

// This file holds the engine machinery that every dynamical-system driver
// shares, regardless of what its "plan" is: the regression Engine compiles
// clamp bitmasks into constant-folded inference plans, the OptEngine
// compiles annealing schedules into solver plans, and both resolve them
// through the same bounded-LRU / lock-free-snapshot / per-key-singleflight
// cache and recycle their per-worker scratch states through the same
// bounded free-list. Extracting the cache and the free-list (rather than
// mirroring them into opt.go the way PR 3 found them mirrored across
// scalable and dspu) keeps the concurrency discipline — and its counters'
// determinism guarantee — in exactly one place.

// planCall is an in-flight plan compilation other resolvers of the same
// key wait on instead of compiling again (per-key singleflight).
type planCall struct {
	done chan struct{} // closed once pl is published
	pl   any
}

// planCacheObs is the instrument slice of the cache: the owning engine
// passes its binding's counters into resolve. Nil instruments (observability
// disabled) are no-ops via the obs nil-receiver contract.
type planCacheObs struct {
	hits, misses, evictions, singleflightWaits *obs.Counter
	resident                                   *obs.Gauge
}

// planCache is the compiled-plan cache shared by the inference and
// optimization engines: a bounded LRU behind a lock-free read snapshot,
// with compilation running outside the lock under per-key singleflight.
// The zero value is ready to use (the LRU is allocated lazily at
// PlanCacheCapacity). Hit/miss counters stay deterministic for a fixed
// call sequence: a key's first resolution is the one miss, every other
// resolution — snapshot hit, LRU hit, or singleflight wait — is a hit,
// regardless of worker interleaving.
type planCache struct {
	// mu guards the bounded LRU, the in-flight compile table, and snapshot
	// publication — but never a compile: resolve registers an in-flight
	// call, releases the lock, compiles, and re-locks only to insert and
	// republish. Warm lookups bypass the lock entirely via snap, an
	// immutable map snapshot of the resident entries rebuilt (O(capacity))
	// on every insert or eviction.
	mu       sync.Mutex
	lru      *lru.Cache[any]
	inflight map[string]*planCall
	snap     atomic.Pointer[map[string]any]

	hits, misses atomic.Uint64
}

// resolve returns the plan for key, compiling it at most once per
// residency. compile runs unlocked; concurrent resolvers of one missing key
// wait on the single in-flight compile (counted as hits — the key is
// compiled once), while compiles of different keys proceed concurrently.
func (c *planCache) resolve(key []byte, compile func() any, m planCacheObs) any {
	if snap := c.snap.Load(); snap != nil {
		if pl, ok := (*snap)[string(key)]; ok {
			c.hits.Add(1)
			m.hits.Inc()
			// Refresh recency when the lock is free; skipping under
			// contention only costs eviction-order fidelity, never
			// correctness.
			if c.mu.TryLock() {
				if c.lru != nil {
					c.lru.Get(key)
				}
				c.mu.Unlock()
			}
			return pl
		}
	}
	c.mu.Lock()
	if c.lru == nil {
		// Lazy: engines built as bare literals in tests never populate it.
		c.lru = lru.New[any](PlanCacheCapacity)
		c.inflight = make(map[string]*planCall)
	}
	if pl, ok := c.lru.Get(key); ok {
		c.mu.Unlock()
		c.hits.Add(1)
		m.hits.Inc()
		return pl
	}
	if call, ok := c.inflight[string(key)]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		m.hits.Inc()
		m.singleflightWaits.Inc()
		<-call.done
		return call.pl
	}
	call := &planCall{done: make(chan struct{})}
	ks := string(key)
	c.inflight[ks] = call
	c.mu.Unlock()

	c.misses.Add(1)
	m.misses.Inc()
	call.pl = compile()

	c.mu.Lock()
	if c.lru.Add(key, call.pl) {
		m.evictions.Inc()
	}
	delete(c.inflight, ks)
	c.publishSnapshotLocked()
	m.resident.Set(float64(c.lru.Len()))
	c.mu.Unlock()
	close(call.done)
	return call.pl
}

// peek returns the resident plan for key without compiling, without
// counters, and without a recency bump — the streaming delta-compiler's
// predecessor lookup.
func (c *planCache) peek(key []byte) (any, bool) {
	if snap := c.snap.Load(); snap != nil {
		pl, ok := (*snap)[string(key)]
		return pl, ok
	}
	return nil, false
}

// publishSnapshotLocked rebuilds the lock-free read snapshot from the LRU.
// Caller holds mu.
func (c *planCache) publishSnapshotLocked() {
	snap := make(map[string]any, c.lru.Len())
	c.lru.Each(func(k string, v any) { snap[k] = v })
	c.snap.Store(&snap)
}

// stats reports the cumulative hit and miss counts.
func (c *planCache) stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// resident reports how many compiled plans are currently cached.
func (c *planCache) resident() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lru == nil {
		return 0
	}
	return c.lru.Len()
}

// freeList is the bounded scratch-state free-list shared by the inference
// and optimization engines: batch fan-outs draw one state per worker and
// return them afterwards, so repeated batches stop re-allocating per-worker
// arenas. Reuse is safe because every run fully re-seeds the state.
type freeList[T any] struct {
	mu    sync.Mutex
	items []T
}

// maxPooledStates bounds each engine's free-list: enough for any realistic
// worker count, small enough that an unusually wide one-off batch cannot
// pin its arenas forever.
const maxPooledStates = 32

// get pops a pooled state, reporting whether one was available.
func (f *freeList[T]) get() (v T, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.items)
	if n == 0 {
		return v, false
	}
	v = f.items[n-1]
	var zero T
	f.items[n-1] = zero
	f.items = f.items[:n-1]
	return v, true
}

// put returns a state to the free-list, dropping it when the list is full.
func (f *freeList[T]) put(v T) {
	f.mu.Lock()
	if len(f.items) < maxPooledStates {
		f.items = append(f.items, v)
	}
	f.mu.Unlock()
}
