package engine

import (
	"time"

	"dsgl/internal/obs"
)

// engineObs bundles the engine's pre-registered instruments. A binding is
// built once per (engine, registry) pair and cached on the engine behind
// an atomic pointer: the hot path loads the pointer, compares the bound
// registry against obs.Default(), and — in the steady state — proceeds
// with zero allocations. When observability is disabled (nil default
// registry) the binding carries nil instruments, whose nil-receiver
// methods are no-ops, and the timing calls are skipped entirely; the
// zero-alloc anneal contract holds in both states (enforced by
// TestInferPlanObsZeroAlloc and the BenchmarkInferPlan allocs column).
//
// Instruments record once per inference or batch, never per step.
type engineObs struct {
	reg *obs.Registry // registry the instruments belong to (nil = disabled)

	infers         *obs.Counter   // dsgl_infer_total
	inferErrors    *obs.Counter   // dsgl_infer_errors_total
	inferSettled   *obs.Counter   // dsgl_infer_settled_total
	wallSeconds    *obs.Histogram // dsgl_infer_wall_seconds
	simNs          *obs.Histogram // dsgl_infer_sim_ns
	annealSteps    *obs.Counter   // dsgl_anneal_steps_total
	settleResidual *obs.Summary   // dsgl_settle_residual
	planHits       *obs.Counter   // dsgl_plan_cache_hits_total
	planMisses     *obs.Counter   // dsgl_plan_cache_misses_total
	planEvictions  *obs.Counter   // dsgl_plan_cache_evictions_total
	planResident   *obs.Gauge     // dsgl_plan_cache_resident
	batches        *obs.Counter   // dsgl_infer_batch_total
	batchWindows   *obs.Counter   // dsgl_infer_batch_windows_total
	batchWorkers   *obs.Gauge     // dsgl_infer_batch_workers

	planSingleflightWaits *obs.Counter // dsgl_plan_singleflight_waits_total
	statePoolHits         *obs.Counter // dsgl_state_pool_hits_total
	statePoolMisses       *obs.Counter // dsgl_state_pool_misses_total
	shardInfers           *obs.Counter // dsgl_shard_infer_total
	shardSyncRounds       *obs.Counter // dsgl_shard_sync_rounds_total
	shardAnnealSteps      *obs.Counter // dsgl_shard_anneal_steps_total
	shardWorkers          *obs.Gauge   // dsgl_shard_workers

	// Streaming-inference instruments (stream.go): delta-compile outcomes
	// and the warm-vs-cold steps-to-settle comparison the warm-start path
	// is judged by.
	planDeltaHits      *obs.Counter // dsgl_plan_delta_hits_total
	planDeltaFallbacks *obs.Counter // dsgl_plan_delta_fallbacks_total
	streamTicks        *obs.Counter // dsgl_stream_ticks_total
	streamColdSteps    *obs.Summary // dsgl_stream_cold_steps
	streamWarmSteps    *obs.Summary // dsgl_stream_warm_steps
}

// newEngineObs registers (or re-binds, registration being idempotent) the
// engine instrument set on r, labeled by backend. Nil r yields a disabled
// binding of nil no-op instruments.
func newEngineObs(r *obs.Registry, backend string) *engineObs {
	if r == nil {
		return &engineObs{}
	}
	l := obs.L("backend", backend)
	return &engineObs{
		reg:            r,
		infers:         r.Counter("dsgl_infer_total", "completed inferences", l),
		inferErrors:    r.Counter("dsgl_infer_errors_total", "inferences rejected or failed", l),
		inferSettled:   r.Counter("dsgl_infer_settled_total", "inferences that settled before the time budget", l),
		wallSeconds:    r.Histogram("dsgl_infer_wall_seconds", "host wall time per inference", l),
		simNs:          r.Histogram("dsgl_infer_sim_ns", "simulated anneal latency per inference (Result.LatencyNs)", l),
		annealSteps:    r.Counter("dsgl_anneal_steps_total", "integration steps taken across all inferences", l),
		settleResidual: r.Summary("dsgl_settle_residual", "equilibrium residual max |dsigma/dt| at convergence (settled inferences)", l),
		planHits:       r.Counter("dsgl_plan_cache_hits_total", "clamp-plan cache hits", l),
		planMisses:     r.Counter("dsgl_plan_cache_misses_total", "clamp-plan cache misses (each compiles a plan)", l),
		planEvictions:  r.Counter("dsgl_plan_cache_evictions_total", "clamp-plan cache evictions", l),
		planResident:   r.Gauge("dsgl_plan_cache_resident", "compiled clamp plans currently resident", l),
		batches:        r.Counter("dsgl_infer_batch_total", "InferBatch invocations", l),
		batchWindows:   r.Counter("dsgl_infer_batch_windows_total", "windows fanned out across all batches", l),
		batchWorkers:   r.Gauge("dsgl_infer_batch_workers", "worker count of the most recent batch", l),

		planSingleflightWaits: r.Counter("dsgl_plan_singleflight_waits_total", "plan resolutions that waited on another worker's in-flight compile", l),
		statePoolHits:         r.Counter("dsgl_state_pool_hits_total", "batch InferStates served from the engine free-list", l),
		statePoolMisses:       r.Counter("dsgl_state_pool_misses_total", "batch InferStates allocated because the free-list was dry", l),
		shardInfers:           r.Counter("dsgl_shard_infer_total", "inferences that ran the sharded anneal path", l),
		shardSyncRounds:       r.Counter("dsgl_shard_sync_rounds_total", "cross-shard synchronization rounds across all sharded inferences", l),
		shardAnnealSteps:      r.Counter("dsgl_shard_anneal_steps_total", "integration steps taken on the sharded anneal path", l),
		shardWorkers:          r.Gauge("dsgl_shard_workers", "shard count of the most recent sharded inference", l),

		planDeltaHits:      r.Counter("dsgl_plan_delta_hits_total", "clamp plans resolved by patching the predecessor pattern's plan", l),
		planDeltaFallbacks: r.Counter("dsgl_plan_delta_fallbacks_total", "shifted-pattern plan misses that fell back to a full compile", l),
		streamTicks:        r.Counter("dsgl_stream_ticks_total", "streaming inference ticks (cold first ticks included)", l),
		streamColdSteps:    r.Summary("dsgl_stream_cold_steps", "integration steps to settle on a stream's cold first tick", l),
		streamWarmSteps:    r.Summary("dsgl_stream_warm_steps", "integration steps to settle on warm-started stream ticks", l),
	}
}

// enabled reports whether this binding records anywhere.
func (m *engineObs) enabled() bool { return m.reg != nil }

// planObs is the slice of the binding the shared plan cache records into.
func (m *engineObs) planObs() planCacheObs {
	return planCacheObs{
		hits:              m.planHits,
		misses:            m.planMisses,
		evictions:         m.planEvictions,
		singleflightWaits: m.planSingleflightWaits,
		resident:          m.planResident,
	}
}

// metrics returns the engine's instrument binding for the current default
// registry, rebuilding it only when the registry changed (enable/disable/
// test swap). The steady-state cost is one atomic load and one pointer
// compare.
func (e *Engine) metrics() *engineObs {
	m := e.obsBind.Load()
	r := obs.Default()
	if m != nil && m.reg == r {
		return m
	}
	m = newEngineObs(r, e.b.Name())
	e.obsBind.Store(m)
	return m
}

// recordInfer records the outcome of one anneal. start is meaningful only
// when the binding is enabled (callers skip the clock otherwise).
func (m *engineObs) recordInfer(res *Result, err error, start time.Time) {
	if !m.enabled() {
		return
	}
	if err != nil {
		m.inferErrors.Inc()
		return
	}
	m.infers.Inc()
	m.wallSeconds.Observe(time.Since(start).Seconds())
	m.simNs.Observe(res.LatencyNs)
	m.annealSteps.Add(uint64(res.Steps))
	if res.Settled {
		m.inferSettled.Inc()
		// Residual is NaN when no convergence check fired; Observe skips
		// NaN, so the summary only aggregates real residuals.
		m.settleResidual.Observe(res.Residual)
	}
}

// optObs is the OptEngine's instrument binding — same caching discipline as
// engineObs, same dsgl_plan_cache_* / dsgl_state_pool_* instrument names
// (labeled by the solver backend), plus the solve-specific set. Instruments
// record once per restart or batch, never per sweep.
type optObs struct {
	reg *obs.Registry // registry the instruments belong to (nil = disabled)

	solves          *obs.Counter   // dsgl_opt_solves_total
	solveErrors     *obs.Counter   // dsgl_opt_solve_errors_total
	solveSteps      *obs.Counter   // dsgl_opt_steps_total
	restarts        *obs.Counter   // dsgl_opt_restarts_total
	batches         *obs.Counter   // dsgl_opt_batch_total
	batchWorkers    *obs.Gauge     // dsgl_opt_batch_workers
	bestEnergy      *obs.Gauge     // dsgl_opt_best_energy
	wallSeconds     *obs.Histogram // dsgl_opt_wall_seconds
	planHits        *obs.Counter   // dsgl_plan_cache_hits_total
	planMisses      *obs.Counter   // dsgl_plan_cache_misses_total
	planEvictions   *obs.Counter   // dsgl_plan_cache_evictions_total
	planResident    *obs.Gauge     // dsgl_plan_cache_resident
	planSFWaits     *obs.Counter   // dsgl_plan_singleflight_waits_total
	statePoolHits   *obs.Counter   // dsgl_state_pool_hits_total
	statePoolMisses *obs.Counter   // dsgl_state_pool_misses_total
}

// newOptObs registers the solver instrument set on r, labeled by backend.
// Nil r yields a disabled binding of nil no-op instruments.
func newOptObs(r *obs.Registry, backend string) *optObs {
	if r == nil {
		return &optObs{}
	}
	l := obs.L("backend", backend)
	return &optObs{
		reg:             r,
		solves:          r.Counter("dsgl_opt_solves_total", "completed solver restarts", l),
		solveErrors:     r.Counter("dsgl_opt_solve_errors_total", "solver restarts rejected or failed", l),
		solveSteps:      r.Counter("dsgl_opt_steps_total", "sweeps or integration steps taken across all restarts", l),
		restarts:        r.Counter("dsgl_opt_restarts_total", "restarts fanned out across all Solve batches", l),
		batches:         r.Counter("dsgl_opt_batch_total", "multi-restart Solve invocations", l),
		batchWorkers:    r.Gauge("dsgl_opt_batch_workers", "worker count of the most recent Solve batch", l),
		bestEnergy:      r.Gauge("dsgl_opt_best_energy", "best Hamiltonian energy of the most recent Solve batch", l),
		wallSeconds:     r.Histogram("dsgl_opt_wall_seconds", "host wall time per solver restart", l),
		planHits:        r.Counter("dsgl_plan_cache_hits_total", "solver-plan cache hits", l),
		planMisses:      r.Counter("dsgl_plan_cache_misses_total", "solver-plan cache misses (each compiles a plan)", l),
		planEvictions:   r.Counter("dsgl_plan_cache_evictions_total", "solver-plan cache evictions", l),
		planResident:    r.Gauge("dsgl_plan_cache_resident", "compiled solver plans currently resident", l),
		planSFWaits:     r.Counter("dsgl_plan_singleflight_waits_total", "plan resolutions that waited on another worker's in-flight compile", l),
		statePoolHits:   r.Counter("dsgl_state_pool_hits_total", "SolveStates served from the engine free-list", l),
		statePoolMisses: r.Counter("dsgl_state_pool_misses_total", "SolveStates allocated because the free-list was dry", l),
	}
}

// enabled reports whether this binding records anywhere.
func (m *optObs) enabled() bool { return m.reg != nil }

// planObs is the slice of the binding the shared plan cache records into.
func (m *optObs) planObs() planCacheObs {
	return planCacheObs{
		hits:              m.planHits,
		misses:            m.planMisses,
		evictions:         m.planEvictions,
		singleflightWaits: m.planSFWaits,
		resident:          m.planResident,
	}
}

// metrics returns the optimization engine's instrument binding for the
// current default registry; same steady-state cost as Engine.metrics.
func (e *OptEngine) metrics() *optObs {
	m := e.obsBind.Load()
	r := obs.Default()
	if m != nil && m.reg == r {
		return m
	}
	m = newOptObs(r, e.b.Name())
	e.obsBind.Store(m)
	return m
}

// recordSolve records the outcome of one restart. start is meaningful only
// when the binding is enabled.
func (m *optObs) recordSolve(res *OptResult, err error, start time.Time) {
	if !m.enabled() {
		return
	}
	if err != nil {
		m.solveErrors.Inc()
		return
	}
	m.solves.Inc()
	m.wallSeconds.Observe(time.Since(start).Seconds())
	m.solveSteps.Add(uint64(res.Steps))
}
