package engine

import (
	"fmt"
	"math"

	"dsgl/internal/mat"
	"dsgl/internal/rng"
)

// Observation clamps node Index to Value during inference.
type Observation struct {
	Index int
	Value float64
}

// Result is the outcome of one inference, shared by every backend. Fields a
// backend does not model stay zero (the dense DSPU performs no slice
// switching, so Switches is always 0 there; the scalable machine's latency
// already includes switch overhead).
type Result struct {
	Voltage   []float64
	LatencyNs float64 // annealing time + any switching overhead
	AnnealNs  float64 // annealing time only
	Settled   bool
	Switches  int // mapping switches (= synchronization events) performed
	Steps     int // integration steps taken
	Energy    float64
	// Residual is the full-coupling equilibrium residual max |dσ/dt| seen
	// by the most recent in-loop convergence check; NaN when the run ended
	// (budget exhausted) before any full-residual check fired. When Settled
	// is true it is guaranteed below the backend's SettleResidualTol.
	Residual float64
}

// Detach deep-copies a Result so it no longer aliases scratch buffers.
func (r *Result) Detach() *Result {
	c := *r
	c.Voltage = mat.CopyVec(r.Voltage)
	return &c
}

// StepInfo is the per-step telemetry handed to a StepObserver: the step
// index, the simulated anneal time, a lazy evaluator for the Hamiltonian of
// the full compiled system at the post-step state, the live mapping slice
// (always 0 for single-phase backends), the max |dσ/dt| the convergence
// check saw, and the state vector itself. X aliases the inference scratch
// buffer — read it during the callback, copy it if it must outlive the step,
// never write it.
//
// EnergyFn computes the backend's EnergyAt(X) on demand. Evaluating the
// Hamiltonian walks every stored coupling — O(nnz) per call — which used to
// tax every observed step even when the observer never looked at the energy.
// The hot loops hand out a pre-bound closure and pay only when the observer
// actually calls it. Like X, EnergyFn reads the live scratch buffers and is
// valid only during the callback.
type StepInfo struct {
	Step     int
	TimeNs   float64
	EnergyFn func() float64
	MaxDeriv float64
	Phase    int
	X        []float64
}

// StepObserver receives StepInfo after every integration step of an
// inference. Observers are the hook the invariant-verification harness uses
// to watch monotone energy descent (paper Eqs. 6-8); they run inline in the
// anneal loop, so an installed observer trades speed for visibility. A nil
// observer costs one branch per step and keeps the hot loop allocation-free.
type StepObserver func(StepInfo)

// InferState is a reusable per-worker scratch arena for inference. The
// engine owns the backend-independent buffers — working voltages, clamp mask
// and index list, plan-cache key, RNG, result, observer — and the backend
// hangs its own arena off Scratch in AttachState. After the state's first
// use an inference runs allocation-free (enforced per backend by the
// zero-alloc tests and the benchmark allocs/op columns).
//
// A state belongs to the engine that created it and must not be shared
// between goroutines; concurrent inference uses one state per worker
// (InferBatch arranges this automatically).
type InferState struct {
	eng *Engine

	// X is the working voltage vector. Observations are clamped into it;
	// free entries are seeded by the engine before each anneal.
	X []float64
	// Clamped marks the observed nodes; ClampIdx lists them in observation
	// order (the form integrator-style backends iterate).
	Clamped  []bool
	ClampIdx []int
	// KeyBuf is the packed clamp-mask plan-cache key scratch: maskBytes
	// of bitmask plus one trailing tag byte distinguishing the sharded
	// plan variant (see shardPlanTag).
	KeyBuf []byte
	// RNG is the per-state noise/init stream, reseeded per inference.
	RNG rng.RNG
	// Res is the in-place result of the last inference on this state.
	Res Result
	// WarmStart marks the state as carrying a previous equilibrium into
	// this run (a streaming warm tick): X's free entries are the settled
	// voltages of the predecessor tick, not a fresh random init. Backends
	// may exploit it — the scalable machine seeds every held slice from
	// the warm state up front and settles on a fine-grained check instead
	// of waiting out a full slice cycle. Every entry point clears it
	// (applyObservations); only InferShifted arms it.
	WarmStart bool
	// Observer, when non-nil, receives StepInfo after every step.
	Observer StepObserver
	// EnergyFn is the pre-bound lazy Hamiltonian closure handed to
	// observers; it evaluates the backend's EnergyAt over X.
	EnergyFn func() float64
	// Scratch is the backend's private arena, allocated by AttachState.
	Scratch any
}

// NewInferState allocates a scratch arena sized for this engine's backend.
func (e *Engine) NewInferState() *InferState {
	n := e.b.Dim()
	st := &InferState{
		eng:      e,
		X:        make([]float64, n),
		Clamped:  make([]bool, n),
		ClampIdx: make([]int, 0, n),
		KeyBuf:   make([]byte, maskBytes(n)+1),
	}
	st.EnergyFn = func() float64 { return e.b.EnergyAt(st.X) }
	e.b.AttachState(st)
	return st
}

// SetObserver installs (or, with nil, removes) a per-step observer on this
// state. The observer applies to every subsequent inference run on the
// state.
func (st *InferState) SetObserver(fn StepObserver) { st.Observer = fn }

// Result returns the outcome of the last inference run on this state. The
// Voltage slice aliases the state's internal buffer and is overwritten by
// the next inference; copy it (or Detach) if it must outlive the state.
func (st *InferState) Result() *Result { return &st.Res }

// applyObservations resets the clamp mask and clamps each observation onto
// the state via the shared validator.
func (st *InferState) applyObservations(obs []Observation) error {
	st.WarmStart = false // every entry point runs cold; InferShifted re-arms
	b := st.eng.b
	return validateObservations(b.Name(), obs, len(st.X), b.Rails(), st.X, st.Clamped, &st.ClampIdx)
}

// validateObservations is the single observation validator every entry point
// runs — index range, rail bound, duplicate rejection. A duplicate index is
// rejected rather than silently last-wins: two observations for one node are
// almost always a windowing bug, and the clamp-plan key (which is a set, not
// a list) would otherwise hide the difference.
//
// clamped (length n) is reset and filled as the mask. When x is non-nil the
// observation values are clamped into it; when clampIdx is non-nil it is
// reset and filled with the observed indices in observation order. Passing
// nil for both validates without mutating any inference state — the
// EnsurePlan path.
func validateObservations(name string, obs []Observation, n int, rail float64, x []float64, clamped []bool, clampIdx *[]int) error {
	for i := range clamped {
		clamped[i] = false
	}
	if clampIdx != nil {
		*clampIdx = (*clampIdx)[:0]
	}
	for _, o := range obs {
		if o.Index < 0 || o.Index >= n {
			return fmt.Errorf("%s: observation index %d out of range [0,%d)", name, o.Index, n)
		}
		if math.Abs(o.Value) > rail {
			return fmt.Errorf("%s: observation value %g exceeds rail %g", name, o.Value, rail)
		}
		if clamped[o.Index] {
			return fmt.Errorf("%s: duplicate observation for node %d", name, o.Index)
		}
		if x != nil {
			x[o.Index] = o.Value
		}
		clamped[o.Index] = true
		if clampIdx != nil {
			*clampIdx = append(*clampIdx, o.Index)
		}
	}
	return nil
}
