package engine

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"dsgl/internal/pool"
	"dsgl/internal/rng"
)

// This file is the optimization half of the engine: the regression Engine
// drives clamp-observation inference (plan = clamp bitmask), the OptEngine
// drives combinatorial solvers (plan = annealing schedule + instance). The
// split keeps what every dynamical system shares — state lifecycle and
// pooling, the BaseSeed()+i seeding convention, batch fan-out over
// internal/pool, StepObserver dispatch with the lazy EnergyFn, plan caching
// with deterministic counters, obs instrumentation — in one place, while
// the contracts diverge where the problems genuinely differ: a solver has
// no observations to validate, no rails, no window semantics; it has a
// schedule to compile and restarts to fan out.
//
// Bit-exactness discipline carries over unchanged: the OptEngine never
// touches a restart's floating-point path. It seeds the state RNG and hands
// off to the backend's RunSolve, so restart i of a multi-restart batch is a
// pure function of (schedule-for-restart-i, baseSeed+i) and a parallel
// Solve is bit-identical to a sequential loop for any worker count — the
// same property the regression batch engine proves under -race.

// Schedule kinds of the annealing-schedule library.
const (
	// ScheduleLinear ramps the control value linearly from T0 to T1.
	ScheduleLinear = "linear"
	// ScheduleGeometric cools geometrically from T0 to T1 — the classic
	// simulated-annealing ladder.
	ScheduleGeometric = "geometric"
	// ScheduleAdaptive is the geometric ladder made restart-aware: restart
	// r reheats its starting value to T0·Reheat^(r mod Period), cycling
	// through Period exploration intensities. The adaptation is a pure
	// function of the restart index — never of another restart's outcome —
	// which is what keeps a parallel multi-restart batch bit-identical to
	// the sequential loop.
	ScheduleAdaptive = "adaptive"
)

// Schedule is an annealing schedule: the optimization analogue of the
// regression engine's clamp pattern. A backend compiles (schedule,
// instance) into an immutable solver plan; the engine caches plans keyed by
// the packed schedule, so the Period distinct variants of an adaptive
// multi-restart batch compile once each and hit thereafter.
//
// The control value T is dimensionless; each dynamics interprets the ladder
// in its own units (Metropolis: temperature; BRIM: flip fraction scale;
// OIM: SHIL ramp position). T runs from T0 at step 0 to T1 at step Steps-1.
type Schedule struct {
	Kind  string  // ScheduleLinear | ScheduleGeometric | ScheduleAdaptive
	Steps int     // sweeps (discrete dynamics) or integration steps per restart
	T0    float64 // initial control value (> 0)
	T1    float64 // final control value (> 0, <= T0)
	// Period and Reheat shape the adaptive kind: restart r starts from
	// T0·Reheat^(r mod Period) (clamped below at T1). Ignored by the other
	// kinds.
	Period int
	Reheat float64
}

// LinearSchedule builds a linear ramp schedule.
func LinearSchedule(steps int, t0, t1 float64) Schedule {
	return Schedule{Kind: ScheduleLinear, Steps: steps, T0: t0, T1: t1}
}

// GeometricSchedule builds a geometric cooling schedule.
func GeometricSchedule(steps int, t0, t1 float64) Schedule {
	return Schedule{Kind: ScheduleGeometric, Steps: steps, T0: t0, T1: t1}
}

// AdaptiveSchedule builds a restart-adaptive geometric schedule: restarts
// cycle through period starting values T0·reheat^p, p = restart mod period.
func AdaptiveSchedule(steps int, t0, t1 float64, period int, reheat float64) Schedule {
	return Schedule{Kind: ScheduleAdaptive, Steps: steps, T0: t0, T1: t1, Period: period, Reheat: reheat}
}

// Validate checks the schedule parameters.
func (s Schedule) Validate() error {
	switch s.Kind {
	case ScheduleLinear, ScheduleGeometric, ScheduleAdaptive:
	default:
		return fmt.Errorf("schedule kind %q not one of %s|%s|%s", s.Kind, ScheduleLinear, ScheduleGeometric, ScheduleAdaptive)
	}
	if s.Steps < 1 {
		return fmt.Errorf("schedule needs Steps >= 1, got %d", s.Steps)
	}
	if !(s.T0 > 0) || !(s.T1 > 0) {
		return fmt.Errorf("schedule endpoints must be positive, got T0=%g T1=%g", s.T0, s.T1)
	}
	if s.T1 > s.T0 {
		return fmt.Errorf("schedule must cool: T1=%g > T0=%g", s.T1, s.T0)
	}
	if s.Kind == ScheduleAdaptive {
		if s.Period < 1 {
			return fmt.Errorf("adaptive schedule needs Period >= 1, got %d", s.Period)
		}
		if !(s.Reheat > 0) {
			return fmt.Errorf("adaptive schedule needs Reheat > 0, got %g", s.Reheat)
		}
	}
	return nil
}

// At evaluates the control ladder at step k in [0, Steps): T0 at 0, T1 at
// Steps-1, linear or geometric in between (the adaptive kind anneals each
// restart on the geometric ladder of its ForRestart-derived endpoints).
func (s Schedule) At(k int) float64 {
	if s.Steps <= 1 {
		return s.T0
	}
	f := float64(k) / float64(s.Steps-1)
	if s.Kind == ScheduleLinear {
		return s.T0 + (s.T1-s.T0)*f
	}
	return s.T0 * math.Pow(s.T1/s.T0, f)
}

// ForRestart derives the concrete schedule restart r anneals under. The
// linear and geometric kinds are restart-invariant; the adaptive kind
// reheats T0 by Reheat^(r mod Period), clamped below at T1, so a restart
// batch cycles deterministically through Period exploration intensities.
func (s Schedule) ForRestart(r int) Schedule {
	if s.Kind != ScheduleAdaptive {
		return s
	}
	eff := s
	t0 := s.T0 * math.Pow(s.Reheat, float64(r%s.Period))
	if t0 < s.T1 {
		t0 = s.T1
	}
	eff.T0 = t0
	return eff
}

// scheduleKeyLen is the packed-schedule plan-cache key length: kind byte,
// steps, T0, T1, period, reheat.
const scheduleKeyLen = 1 + 8 + 8 + 8 + 8 + 8

// packSchedule packs the schedule into buf as the plan-cache key. buf must
// have at least scheduleKeyLen bytes.
func packSchedule(s Schedule, buf []byte) []byte {
	var kind byte
	switch s.Kind {
	case ScheduleLinear:
		kind = 1
	case ScheduleGeometric:
		kind = 2
	case ScheduleAdaptive:
		kind = 3
	}
	buf[0] = kind
	binary.LittleEndian.PutUint64(buf[1:], uint64(s.Steps))
	binary.LittleEndian.PutUint64(buf[9:], math.Float64bits(s.T0))
	binary.LittleEndian.PutUint64(buf[17:], math.Float64bits(s.T1))
	binary.LittleEndian.PutUint64(buf[25:], uint64(s.Period))
	binary.LittleEndian.PutUint64(buf[33:], math.Float64bits(s.Reheat))
	return buf[:scheduleKeyLen]
}

// OptBackend is the contract a combinatorial solver implements to be driven
// by the OptEngine. All methods except RunSolve must be safe for concurrent
// use; RunSolve is called with a per-worker SolveState and may only mutate
// that state (plus backend-owned immutable data), which is what makes a
// parallel multi-restart Solve race-free.
type OptBackend interface {
	// Name prefixes error messages and names the backend in CLIs, reports,
	// and obs labels ("ising-brim", "ising-metropolis", ...).
	Name() string
	// Dim is the spin-vector dimension (node count of the instance).
	Dim() int
	// BaseSeed is the backend's configured seed; restart i of a
	// multi-restart Solve runs with BaseSeed()+i.
	BaseSeed() uint64
	// CompileSolvePlan compiles the annealing schedule against the
	// backend's instance into an immutable solver plan (precomputed control
	// ladders, checkpoint tables). Plans must depend only on the schedule —
	// the instance is fixed at backend construction — and are shared freely
	// across workers; the engine caches them by packed schedule.
	CompileSolvePlan(sched Schedule) any
	// AttachSolveState allocates the backend's scratch arena into
	// st.Scratch (and may rebind st.EnergyFn). Called once per SolveState,
	// from NewSolveState.
	AttachSolveState(st *SolveState)
	// RunSolve runs one restart on a prepared state (st.RNG seeded; spin
	// and carrier buffers are scratch the backend initializes) under a plan
	// previously returned by CompileSolvePlan. It writes st.Res — the best
	// state seen during the restart and its energy — and returns &st.Res.
	RunSolve(st *SolveState, plan any) (*OptResult, error)
	// EnergyOf evaluates the objective Hamiltonian at spin vector s; the
	// engine binds it into the lazy StepInfo.EnergyFn handed to observers,
	// and the opt-best-energy-monotone invariant recomputes reported
	// energies through it.
	EnergyOf(s []int8) float64
}

// OptResult is the outcome of one solver restart: the best spin state seen
// during the anneal (not necessarily the final one) and its energy.
type OptResult struct {
	Spins    []int8
	Energy   float64
	BestStep int // step index at which the best state was first reached
	Steps    int // total steps (sweeps or integration steps) taken
}

// Detach deep-copies the result so it no longer aliases state buffers.
func (r *OptResult) Detach() *OptResult {
	c := *r
	c.Spins = append([]int8(nil), r.Spins...)
	return &c
}

// OptRun is the outcome of a multi-restart Solve.
type OptRun struct {
	// Best is the lowest-energy restart's result; ties resolve to the
	// earliest restart, so Best is worker-count independent.
	Best *OptResult
	// BestRestart is the restart index that produced Best.
	BestRestart int
	// Energies is the per-restart best energy, in restart order.
	Energies []float64
	// BestTrace is the best-energy-so-far after each restart — the
	// non-increasing trace the opt-best-energy-monotone invariant checks.
	BestTrace []float64
	// Restarts and Steps total the run.
	Restarts int
	Steps    int
}

// SolveState is the reusable per-worker scratch arena for one solver
// restart — the optimization peer of InferState. The engine owns the
// backend-independent buffers; the backend hangs its own arena off Scratch
// in AttachSolveState. A state belongs to the engine that created it and
// must not be shared between goroutines; parallel restarts use one state
// per worker (Solve arranges this automatically).
type SolveState struct {
	eng *OptEngine

	// Spins is the working spin vector. Continuous dynamics refresh it from
	// the carrier state at schedule checkpoints; discrete dynamics update it
	// in place.
	Spins []int8
	// X is the continuous carrier state (node voltages for BRIM, oscillator
	// phases for OIM); purely discrete dynamics ignore it.
	X []float64
	// KeyBuf is the packed-schedule plan-cache key scratch.
	KeyBuf []byte
	// RNG is the per-state stream, reseeded per restart.
	RNG rng.RNG
	// Res is the in-place result of the last restart on this state.
	Res OptResult
	// Observer, when non-nil, receives StepInfo at the backend's
	// observation points (every sweep for discrete dynamics, every schedule
	// checkpoint for continuous ones).
	Observer StepObserver
	// EnergyFn is the pre-bound lazy objective closure handed to observers;
	// it evaluates the backend's EnergyOf over the current Spins.
	EnergyFn func() float64
	// Scratch is the backend's private arena, allocated by AttachSolveState.
	Scratch any
}

// SetObserver installs (or, with nil, removes) a per-step observer on this
// state.
func (st *SolveState) SetObserver(fn StepObserver) { st.Observer = fn }

// OptEngine drives multi-restart solving for one OptBackend: schedule
// validation, plan caching, seeding, and restart fan-out. Safe for
// concurrent use.
type OptEngine struct {
	b OptBackend

	// plans caches compiled solver plans keyed by packed schedule — the
	// same cache type, capacity, and counter discipline as the regression
	// engine's clamp-plan cache.
	plans planCache

	// states recycles SolveStates across Solve calls.
	states freeList[*SolveState]

	// obsBind caches the instrument binding; see metrics.go.
	obsBind atomic.Pointer[optObs]
}

// NewOpt binds an optimization engine to its backend.
func NewOpt(b OptBackend) *OptEngine { return &OptEngine{b: b} }

// Backend returns the backend this engine drives.
func (e *OptEngine) Backend() OptBackend { return e.b }

// BaseSeed returns the backend's configured base seed (restart i of a
// Solve anneals with BaseSeed()+i).
func (e *OptEngine) BaseSeed() uint64 { return e.b.BaseSeed() }

// NewSolveState allocates a scratch arena sized for this engine's backend.
func (e *OptEngine) NewSolveState() *SolveState {
	n := e.b.Dim()
	st := &SolveState{
		eng:    e,
		Spins:  make([]int8, n),
		X:      make([]float64, n),
		KeyBuf: make([]byte, scheduleKeyLen),
	}
	st.Res.Spins = make([]int8, n)
	st.EnergyFn = func() float64 { return e.b.EnergyOf(st.Spins) }
	e.b.AttachSolveState(st)
	return st
}

// SolveWith runs one restart on a reusable scratch state with an explicit
// seed under the given concrete schedule. After the state's first use the
// call performs no per-restart heap allocations beyond what the backend's
// plan compile needed (cache hit in the steady state). The returned result
// aliases the state's buffers; Detach it if it must outlive the state.
func (e *OptEngine) SolveWith(st *SolveState, sched Schedule, seed uint64) (*OptResult, error) {
	if st == nil || st.eng != e {
		return nil, fmt.Errorf("%s: SolveState belongs to a different engine", e.b.Name())
	}
	if err := sched.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %v", e.b.Name(), err)
	}
	m := e.metrics()
	var start time.Time
	if m.enabled() {
		start = time.Now()
	}
	st.RNG.Reseed(seed)
	pl := e.plans.resolve(packSchedule(sched, st.KeyBuf),
		func() any { return e.b.CompileSolvePlan(sched) }, m.planObs())
	res, err := e.b.RunSolve(st, pl)
	m.recordSolve(res, err, start)
	return res, err
}

// SolveSeeded runs one restart with an explicit seed on a fresh state and
// returns a detached result.
func (e *OptEngine) SolveSeeded(sched Schedule, seed uint64) (*OptResult, error) {
	res, err := e.SolveWith(e.NewSolveState(), sched, seed)
	if err != nil {
		return nil, err
	}
	return res.Detach(), nil
}

// Solve fans restarts out across a pool of workers (workers <= 0 selects
// runtime.GOMAXPROCS(0)): restart i anneals under sched.ForRestart(i) with
// seed BaseSeed()+i, making the run bit-identical to a sequential loop over
// the restarts — regardless of worker count or scheduling.
func (e *OptEngine) Solve(sched Schedule, restarts, workers int) (*OptRun, error) {
	return e.SolveFrom(sched, e.b.BaseSeed(), restarts, workers)
}

// SolveFrom is Solve with an explicit base seed: restart i runs with seed
// base+i.
func (e *OptEngine) SolveFrom(sched Schedule, base uint64, restarts, workers int) (*OptRun, error) {
	if restarts < 1 {
		restarts = 1
	}
	if err := sched.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %v", e.b.Name(), err)
	}
	results := make([]*OptResult, restarts)
	errs := make([]error, restarts)
	w := pool.Clamp(workers, restarts)
	states := make([]*SolveState, w)
	for i := range states {
		states[i] = e.getState()
	}
	if m := e.metrics(); m.enabled() {
		m.batches.Inc()
		m.restarts.Add(uint64(restarts))
		m.batchWorkers.Set(float64(w))
	}
	pool.RunWorkers(w, restarts, func(worker, i int) {
		res, err := e.SolveWith(states[worker], sched.ForRestart(i), base+uint64(i))
		if err != nil {
			errs[i] = err
			return
		}
		results[i] = res.Detach()
	})
	for _, st := range states {
		e.putState(st)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	run := &OptRun{
		Energies:  make([]float64, restarts),
		BestTrace: make([]float64, restarts),
		Restarts:  restarts,
	}
	best := math.Inf(1)
	for i, res := range results {
		run.Energies[i] = res.Energy
		run.Steps += res.Steps
		// Strict improvement only: equal-energy later restarts never
		// displace an earlier one, so Best is restart-order deterministic.
		if res.Energy < best {
			best = res.Energy
			run.Best = res
			run.BestRestart = i
		}
		run.BestTrace[i] = best
	}
	if m := e.metrics(); m.enabled() {
		m.bestEnergy.Set(run.Best.Energy)
	}
	return run, nil
}

// PlanCacheStats reports the cumulative solver-plan cache hit and miss
// counts.
func (e *OptEngine) PlanCacheStats() (hits, misses uint64) { return e.plans.stats() }

// PlanCacheLen reports how many compiled solver plans are resident.
func (e *OptEngine) PlanCacheLen() int { return e.plans.resident() }

// getState draws a reusable SolveState from the free-list, allocating a
// fresh one only when the pool is dry.
func (e *OptEngine) getState() *SolveState {
	if st, ok := e.states.get(); ok {
		e.metrics().statePoolHits.Inc()
		return st
	}
	e.metrics().statePoolMisses.Inc()
	return e.NewSolveState()
}

// putState returns a state to the free-list. Observers never survive
// pooling: a recycled state must behave exactly like a fresh one.
func (e *OptEngine) putState(st *SolveState) {
	st.Observer = nil
	e.states.put(st)
}

// BestEnergyTrace accumulates the best-energy-so-far seen during one
// restart via the lazy StepInfo.EnergyFn — install Observer() on a
// SolveState to record the descent envelope without the backend evaluating
// the Hamiltonian on steps nobody watches.
type BestEnergyTrace struct {
	// Stride samples the energy every Stride observed steps (<= 1 means
	// every observation point).
	Stride int
	// Best and BestStep track the minimum sampled energy.
	Best     float64
	BestStep int
	// Trace is the best-so-far at each sample — non-increasing by
	// construction.
	Trace []float64

	n int
}

// Reset clears the trace for a new restart.
func (t *BestEnergyTrace) Reset() {
	t.Best = math.Inf(1)
	t.BestStep = 0
	t.Trace = t.Trace[:0]
	t.n = 0
}

// Observer returns the StepObserver that feeds this trace.
func (t *BestEnergyTrace) Observer() StepObserver {
	if t.Best == 0 && len(t.Trace) == 0 && t.n == 0 {
		t.Best = math.Inf(1)
	}
	stride := t.Stride
	if stride < 1 {
		stride = 1
	}
	return func(si StepInfo) {
		if t.n%stride == 0 {
			if e := si.EnergyFn(); e < t.Best {
				t.Best = e
				t.BestStep = si.Step
			}
			t.Trace = append(t.Trace, t.Best)
		}
		t.n++
	}
}
