package engine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// slowCompileBackend delays every plan compile and tracks how many
// compiles overlap, so the tests can prove (a) same-key compiles coalesce
// to one and (b) different-key compiles are NOT serialized behind the
// cache mutex — the regression this engine revision fixes.
type slowCompileBackend struct {
	*stubBackend
	delay       time.Duration
	inFlight    atomic.Int64
	maxInFlight atomic.Int64
}

func (s *slowCompileBackend) CompilePlan(clamped []bool) any {
	cur := s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	for {
		max := s.maxInFlight.Load()
		if cur <= max || s.maxInFlight.CompareAndSwap(max, cur) {
			break
		}
	}
	time.Sleep(s.delay)
	return s.stubBackend.CompilePlan(clamped)
}

func newSlowStub(n int, delay time.Duration) (*slowCompileBackend, *Engine) {
	b := &slowCompileBackend{
		stubBackend: &stubBackend{n: n, rails: 1, seed: 11},
		delay:       delay,
	}
	return b, New(b)
}

// TestPlanCompileCoalescesSameKey: G workers racing on one cold pattern
// must trigger exactly one compile — everyone else either waits on the
// in-flight call or lands on the published plan, and all G-1 of them count
// as cache hits.
func TestPlanCompileCoalescesSameKey(t *testing.T) {
	const G = 8
	b, e := newSlowStub(16, 20*time.Millisecond)
	obs := []Observation{{Index: 2, Value: 0.5}, {Index: 9, Value: -0.25}}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			<-start
			if _, err := e.InferSeeded(obs, seed); err != nil {
				t.Error(err)
			}
		}(uint64(g))
	}
	close(start)
	wg.Wait()

	if got := b.compiles.Load(); got != 1 {
		t.Fatalf("compiles = %d, want 1 (same-key compiles must coalesce)", got)
	}
	hits, misses := e.PlanCacheStats()
	if misses != 1 || hits != G-1 {
		t.Fatalf("stats hits=%d misses=%d, want hits=%d misses=1", hits, misses, G-1)
	}
	if max := b.maxInFlight.Load(); max != 1 {
		t.Fatalf("max concurrent compiles = %d, want 1 for a single key", max)
	}
}

// TestPlanCompileDifferentKeysOverlap: distinct cold patterns must compile
// concurrently rather than queueing behind the cache mutex. Each compile
// sleeps 30ms; if compilation still ran under the lock the in-flight high
// water mark would be pinned at 1.
func TestPlanCompileDifferentKeysOverlap(t *testing.T) {
	const G = 4
	b, e := newSlowStub(16, 30*time.Millisecond)

	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			<-start
			obs := []Observation{{Index: k, Value: 0.5}}
			if _, err := e.InferSeeded(obs, uint64(k)); err != nil {
				t.Error(err)
			}
		}(g)
	}
	close(start)
	wg.Wait()

	if got := b.compiles.Load(); got != G {
		t.Fatalf("compiles = %d, want %d distinct", got, G)
	}
	if _, misses := e.PlanCacheStats(); misses != G {
		t.Fatalf("misses = %d, want %d", misses, G)
	}
	if max := b.maxInFlight.Load(); max < 2 {
		t.Fatalf("max concurrent compiles = %d, want >= 2 (distinct keys must not serialize)", max)
	}
}

// TestInferBatchAllocDelta pins the state-pooling contract: adding batch
// workers must cost at most a few allocations each (the spawned goroutine
// and its bookkeeping), NOT a fresh InferState per worker per call. Before
// pooling, every batch call allocated workers full states (X, Clamped,
// KeyBuf, RNG, backend scratch) and the delta was ~15 allocs per worker on
// the stub — and far more on real backends.
func TestInferBatchAllocDelta(t *testing.T) {
	_, e := newStub(64)
	obs := make([][]Observation, 16)
	for i := range obs {
		obs[i] = []Observation{{Index: i % 4, Value: 0.5}}
	}
	// Warm the plan cache and the state free-list at the largest worker
	// count so the measured runs draw every state from the pool.
	if _, err := e.InferBatch(obs, 4); err != nil {
		t.Fatal(err)
	}

	perCall := func(workers int) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := e.InferBatch(obs, workers); err != nil {
				t.Fatal(err)
			}
		})
	}
	a1 := perCall(1)
	a4 := perCall(4)
	const perWorkerBudget = 8
	if delta := a4 - a1; delta > float64((4-1)*perWorkerBudget) {
		t.Fatalf("workers=4 costs %.1f allocs/op vs %.1f at workers=1 (delta %.1f, budget %d/worker): state pooling regressed",
			a4, a1, delta, perWorkerBudget)
	}
}

// TestStatePoolRecyclesAndCapped: batch states return to the free-list and
// are reused by the next batch; the pool never grows past maxPooledStates;
// a pooled observer never leaks into the next batch.
func TestStatePoolRecyclesAndCapped(t *testing.T) {
	_, e := newStub(8)
	obs := [][]Observation{{{Index: 0, Value: 0.5}}, {{Index: 1, Value: 0.5}}}

	st := e.getState()
	st.Observer = func(StepInfo) { t.Error("pooled observer must be cleared") }
	e.putState(st)
	got := e.getState()
	if got != st {
		t.Fatal("free-list should hand back the pooled state")
	}
	if got.Observer != nil {
		t.Fatal("observer survived pooling")
	}
	e.putState(got)

	if _, err := e.InferBatch(obs, 2); err != nil {
		t.Fatal(err)
	}
	e.states.mu.Lock()
	pooled := len(e.states.items)
	e.states.mu.Unlock()
	if pooled < 2 {
		t.Fatalf("free-list holds %d states after a 2-worker batch, want >= 2", pooled)
	}

	for i := 0; i < 2*maxPooledStates; i++ {
		e.putState(e.NewInferState())
	}
	e.states.mu.Lock()
	pooled = len(e.states.items)
	e.states.mu.Unlock()
	if pooled > maxPooledStates {
		t.Fatalf("free-list grew to %d, cap is %d", pooled, maxPooledStates)
	}
}

// TestConcurrentEnsurePlanBatchAndEviction hammers one shared engine from
// three directions at once — EnsurePlan over a rotating pattern set wide
// enough to force LRU evictions, warm InferBatch fan-outs, and single
// warm inferences — and then checks the batch output is still bit-exact
// against a sequential reference. Run under -race this doubles as the
// locking proof for the snapshot/singleflight/pool machinery.
func TestConcurrentEnsurePlanBatchAndEviction(t *testing.T) {
	b, e := newStub(64)
	batchObs := make([][]Observation, 8)
	for i := range batchObs {
		batchObs[i] = []Observation{{Index: 3, Value: 0.5}, {Index: 7, Value: -0.5}}
	}
	want, err := e.InferBatch(batchObs, 1)
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 40
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // eviction churn: 2*PlanCacheCapacity rotating patterns
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			pat := []Observation{{Index: r % (2 * PlanCacheCapacity), Value: 0.1}}
			if err := e.EnsurePlan(pat); err != nil {
				t.Error(err)
			}
		}
	}()
	go func() { // warm batches
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			got, err := e.InferBatch(batchObs, 4)
			if err != nil {
				t.Error(err)
				return
			}
			for i := range got {
				for j := range got[i].Voltage {
					if got[i].Voltage[j] != want[i].Voltage[j] {
						t.Errorf("round %d window %d node %d: %v != %v",
							r, i, j, got[i].Voltage[j], want[i].Voltage[j])
						return
					}
				}
			}
		}
	}()
	go func() { // warm single inferences racing the eviction churn
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			if _, err := e.InferSeeded(batchObs[0], uint64(r)); err != nil {
				t.Error(err)
			}
		}
	}()
	wg.Wait()

	if resident := e.PlanCacheLen(); resident > PlanCacheCapacity {
		t.Fatalf("%d plans resident, cap is %d", resident, PlanCacheCapacity)
	}
	if b.compiles.Load() < int64(PlanCacheCapacity) {
		t.Fatalf("compiles = %d; churn should have compiled at least %d patterns",
			b.compiles.Load(), PlanCacheCapacity)
	}
}

// TestLRUEachSnapshotConsistency: the published lock-free snapshot always
// reflects a complete resident set — every key the stats say was compiled
// and not evicted resolves through the snapshot without a further miss.
func TestLRUEachSnapshotConsistency(t *testing.T) {
	b, e := newStub(32)
	var patterns [][]Observation
	for k := 0; k < PlanCacheCapacity; k++ {
		patterns = append(patterns, []Observation{{Index: k, Value: 0.25}})
	}
	for i, p := range patterns {
		if _, err := e.InferSeeded(p, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	compiled := b.compiles.Load()
	// Every pattern is resident: re-resolving all of them must be pure
	// snapshot hits with zero new compiles.
	for i, p := range patterns {
		if _, err := e.InferSeeded(p, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if b.compiles.Load() != compiled {
		t.Fatalf("re-resolution compiled %d new plans, want 0", b.compiles.Load()-compiled)
	}
	hits, misses := e.PlanCacheStats()
	if misses != uint64(len(patterns)) || hits != uint64(len(patterns)) {
		t.Fatalf("hits=%d misses=%d, want %d/%d", hits, misses, len(patterns), len(patterns))
	}
}
