package engine

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

// stubBackend is a minimal deterministic Backend: its "anneal" halves every
// free node once per run and counts plan compilations, so the tests can pin
// the engine's validation, seeding, caching, and batching behaviour without
// any real dynamics.
type stubBackend struct {
	n        int
	rails    float64
	seed     uint64
	compiles atomic.Int64
	planned  atomic.Int64
	naive    atomic.Int64
}

type stubPlan struct {
	free []int
}

type stubScratch struct {
	attached bool
}

func (s *stubBackend) Name() string     { return "stub" }
func (s *stubBackend) Dim() int         { return s.n }
func (s *stubBackend) Rails() float64   { return s.rails }
func (s *stubBackend) BaseSeed() uint64 { return s.seed }

func (s *stubBackend) CompilePlan(clamped []bool) any {
	s.compiles.Add(1)
	pl := &stubPlan{}
	for i, c := range clamped {
		if !c {
			pl.free = append(pl.free, i)
		}
	}
	return pl
}

func (s *stubBackend) AttachState(st *InferState) { st.Scratch = &stubScratch{attached: true} }

func (s *stubBackend) run(st *InferState, free []int) (*Result, error) {
	for step := 0; step < 2; step++ {
		for _, i := range free {
			st.X[i] *= 0.5
		}
		if st.Observer != nil {
			st.Observer(StepInfo{Step: step, TimeNs: float64(step + 1), EnergyFn: st.EnergyFn, X: st.X})
		}
	}
	st.Res = Result{Voltage: st.X, LatencyNs: 2, AnnealNs: 2, Settled: true, Steps: 2, Energy: s.EnergyAt(st.X)}
	return &st.Res, nil
}

func (s *stubBackend) RunPlanned(st *InferState, plan any) (*Result, error) {
	s.planned.Add(1)
	return s.run(st, plan.(*stubPlan).free)
}

func (s *stubBackend) RunNaive(st *InferState) (*Result, error) {
	s.naive.Add(1)
	free := make([]int, 0, s.n)
	for i, c := range st.Clamped {
		if !c {
			free = append(free, i)
		}
	}
	return s.run(st, free)
}

func (s *stubBackend) EnergyAt(x []float64) float64 {
	var e float64
	for _, v := range x {
		e += v * v
	}
	return e
}

func (s *stubBackend) ResidualAt(x []float64, clamped []bool) (float64, error) { return 0, nil }
func (s *stubBackend) SettleResidualTol() float64                              { return 1e-6 }

func newStub(n int) (*stubBackend, *Engine) {
	b := &stubBackend{n: n, rails: 1, seed: 11}
	return b, New(b)
}

func TestValidationSharedAcrossEntryPoints(t *testing.T) {
	_, e := newStub(8)
	cases := []struct {
		obs  []Observation
		want string
	}{
		{[]Observation{{Index: -1, Value: 0}}, "out of range"},
		{[]Observation{{Index: 8, Value: 0}}, "out of range"},
		{[]Observation{{Index: 0, Value: 1.5}}, "exceeds rail"},
		{[]Observation{{Index: 2, Value: 0.1}, {Index: 2, Value: 0.1}}, "duplicate"},
	}
	for _, tc := range cases {
		if _, err := e.Infer(tc.obs); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("Infer(%v): got %v, want %q", tc.obs, err, tc.want)
		}
		if _, err := e.InferSeededNaive(tc.obs, 1); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("InferSeededNaive(%v): got %v, want %q", tc.obs, err, tc.want)
		}
		if err := e.EnsurePlan(tc.obs); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("EnsurePlan(%v): got %v, want %q", tc.obs, err, tc.want)
		}
	}
	// Error messages carry the backend name.
	_, err := e.Infer([]Observation{{Index: 99, Value: 0}})
	if err == nil || !strings.Contains(err.Error(), "stub:") {
		t.Fatalf("error %v does not carry the backend name", err)
	}
}

func TestSeedingConventionAndClampWrite(t *testing.T) {
	_, e := newStub(4)
	obs := []Observation{{Index: 1, Value: 0.25}}
	a, err := e.InferSeeded(obs, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.InferSeeded(obs, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Voltage {
		if math.Float64bits(a.Voltage[i]) != math.Float64bits(b.Voltage[i]) {
			t.Fatalf("same seed diverges at node %d", i)
		}
	}
	if a.Voltage[1] != 0.25 {
		t.Fatalf("clamped node moved: %g", a.Voltage[1])
	}
	c, err := e.InferSeeded(obs, 43)
	if err != nil {
		t.Fatal(err)
	}
	if c.Voltage[0] == a.Voltage[0] {
		t.Fatal("different seeds produced identical free-node init")
	}
}

func TestInferBatchMatchesSequential(t *testing.T) {
	b, e := newStub(6)
	obsList := make([][]Observation, 9)
	for i := range obsList {
		obsList[i] = []Observation{{Index: i % 3, Value: 0.1 * float64(i%5)}}
	}
	seq := make([]*Result, len(obsList))
	for i, obs := range obsList {
		r, err := e.InferSeeded(obs, b.BaseSeed()+uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = r
	}
	for _, workers := range []int{1, 4} {
		par, err := e.InferBatch(obsList, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			for k := range seq[i].Voltage {
				if math.Float64bits(par[i].Voltage[k]) != math.Float64bits(seq[i].Voltage[k]) {
					t.Fatalf("workers=%d window %d node %d: %v vs %v",
						workers, i, k, par[i].Voltage[k], seq[i].Voltage[k])
				}
			}
		}
	}
	// Batch errors come back in window order: the first bad window wins.
	obsList[3] = []Observation{{Index: 99, Value: 0}}
	obsList[7] = []Observation{{Index: -1, Value: 0}}
	if _, err := e.InferBatch(obsList, 4); err == nil || !strings.Contains(err.Error(), "99") {
		t.Fatalf("batch error %v, want the window-3 violation", err)
	}
}

func TestInferBatchSeedsMatchesSolo(t *testing.T) {
	_, e := newStub(6)
	obsList := make([][]Observation, 7)
	seeds := make([]uint64, len(obsList))
	for i := range obsList {
		obsList[i] = []Observation{{Index: i % 3, Value: 0.1 * float64(i%4)}}
		// Non-contiguous, out-of-order seeds: the serving layer hands the
		// engine whatever seeds its requests arrived with.
		seeds[i] = uint64(1000 - 17*i)
	}
	solo := make([]*Result, len(obsList))
	for i, obs := range obsList {
		r, err := e.InferSeeded(obs, seeds[i])
		if err != nil {
			t.Fatal(err)
		}
		solo[i] = r
	}
	for _, workers := range []int{1, 4} {
		par, err := e.InferBatchSeeds(obsList, seeds, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range solo {
			for k := range solo[i].Voltage {
				if math.Float64bits(par[i].Voltage[k]) != math.Float64bits(solo[i].Voltage[k]) {
					t.Fatalf("workers=%d window %d node %d: %v vs %v",
						workers, i, k, par[i].Voltage[k], solo[i].Voltage[k])
				}
			}
		}
	}
	if _, err := e.InferBatchSeeds(obsList, seeds[:3], 2); err == nil || !strings.Contains(err.Error(), "seeds") {
		t.Fatalf("seed-count mismatch: got %v, want an error naming the seeds", err)
	}
}

func TestPlanCacheCountersAndEviction(t *testing.T) {
	b, e := newStub(32)
	st := e.NewInferState()
	obs := []Observation{{Index: 0, Value: 0.5}}
	for k := 0; k < 4; k++ {
		if _, err := e.InferWith(st, obs, uint64(k)); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := e.PlanCacheStats()
	if hits != 3 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 3/1", hits, misses)
	}
	if got := b.compiles.Load(); got != 1 {
		t.Fatalf("backend compiled %d plans, want 1", got)
	}
	// Cycle through more patterns than the cache holds; the cache stays
	// bounded and the first pattern is evicted and recompiled on return.
	for p := 0; p < PlanCacheCapacity+1; p++ {
		if _, err := e.InferWith(st, []Observation{{Index: p + 1, Value: 0.1}}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.PlanCacheLen(); n != PlanCacheCapacity {
		t.Fatalf("cache holds %d plans, cap %d", n, PlanCacheCapacity)
	}
	before := b.compiles.Load()
	if _, err := e.InferWith(st, obs, 9); err != nil {
		t.Fatal(err)
	}
	if got := b.compiles.Load(); got != before+1 {
		t.Fatalf("evicted pattern did not recompile: %d -> %d", before, got)
	}
}

func TestEnsurePlanWarmsCache(t *testing.T) {
	b, e := newStub(8)
	obs := []Observation{{Index: 2, Value: 0.3}, {Index: 5, Value: -0.1}}
	if err := e.EnsurePlan(obs); err != nil {
		t.Fatal(err)
	}
	if got := b.compiles.Load(); got != 1 {
		t.Fatalf("EnsurePlan compiled %d plans, want 1", got)
	}
	if _, err := e.Infer(obs); err != nil {
		t.Fatal(err)
	}
	hits, misses := e.PlanCacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("post-EnsurePlan inference: hits=%d misses=%d, want 1/1", hits, misses)
	}
	// Warm EnsurePlan neither allocates nor recompiles.
	allocs := testing.AllocsPerRun(5, func() {
		if err := e.EnsurePlan(obs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm EnsurePlan allocated %v per op, want 0", allocs)
	}
}

func TestForeignStateRejected(t *testing.T) {
	_, e1 := newStub(4)
	_, e2 := newStub(4)
	st := e1.NewInferState()
	if _, err := e2.InferWith(st, nil, 1); err == nil || !strings.Contains(err.Error(), "different engine") {
		t.Fatalf("foreign state: got %v", err)
	}
	if _, err := e2.InferWith(nil, nil, 1); err == nil {
		t.Fatal("nil state accepted")
	}
}

func TestDetachBreaksAliasing(t *testing.T) {
	_, e := newStub(4)
	st := e.NewInferState()
	r1, err := e.InferWith(st, []Observation{{Index: 0, Value: 0.5}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	det := r1.Detach()
	want := append([]float64(nil), det.Voltage...)
	if _, err := e.InferWith(st, []Observation{{Index: 1, Value: -0.5}}, 2); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if det.Voltage[i] != want[i] {
			t.Fatalf("detached result mutated at node %d", i)
		}
	}
	if &r1.Voltage[0] != &st.Res.Voltage[0] {
		t.Fatal("undetached result should alias the state buffer")
	}
}

func TestObserverDispatch(t *testing.T) {
	_, e := newStub(4)
	st := e.NewInferState()
	var steps []int
	var energies []float64
	st.SetObserver(func(si StepInfo) {
		steps = append(steps, si.Step)
		energies = append(energies, si.EnergyFn())
	})
	res, err := e.InferWith(st, []Observation{{Index: 0, Value: 0.5}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(steps) != "[0 1]" {
		t.Fatalf("observer saw steps %v", steps)
	}
	if energies[len(energies)-1] != res.Energy {
		t.Fatalf("last observed energy %g != result energy %g", energies[len(energies)-1], res.Energy)
	}
	st.SetObserver(nil)
	n := len(steps)
	if _, err := e.InferWith(st, nil, 3); err != nil {
		t.Fatal(err)
	}
	if len(steps) != n {
		t.Fatal("observer fired after removal")
	}
}

func TestInferFromUsesInitialState(t *testing.T) {
	_, e := newStub(3)
	res, err := e.InferFrom([]float64{0.8, 0.4, 0.2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.2, 0.1, 0.05} // two halvings of every free node
	for i := range want {
		if math.Abs(res.Voltage[i]-want[i]) > 1e-15 {
			t.Fatalf("node %d: %g, want %g", i, res.Voltage[i], want[i])
		}
	}
	if _, err := e.InferFrom([]float64{1}, nil); err == nil {
		t.Fatal("wrong-length initial state accepted")
	}
}
