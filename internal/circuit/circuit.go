// Package circuit models the electrical network underlying both the BRIM
// Ising machine and the Real-Valued DSPU: nano-scale capacitors holding node
// voltages, a programmable resistive coupling network, and (for the DSPU)
// the circulative resistor rings implementing the quadratic self-reaction
// term.
//
// The network is exposed as an ode.System with state σ (the vector of
// capacitor voltages) so the same integration core drives binary annealing,
// real-valued annealing, and the multi-PE co-annealing simulations. Voltages
// are normalized to the rails [-1, +1]; time is in nanoseconds; conductances
// are in normalized units where capacitance C = 1 corresponds to a ~1 ns
// node time constant, matching the 0-50 ns settling traces of Fig. 4.
package circuit

import (
	"fmt"
	"math"

	"dsgl/internal/mat"
	"dsgl/internal/rng"
)

// SelfReaction selects the self-reaction term of the Hamiltonian, i.e. the
// in-node circuitry.
type SelfReaction int

const (
	// Linear is the original Ising term -Σ h_i σ_i (BRIM). Voltages
	// polarize to the rails; the machine is binary.
	Linear SelfReaction = iota
	// Quadratic is the DS-GL term -Σ h_i σ_i² realized by the circulative
	// resistor ring. With h_i < 0 voltages stabilize at real values
	// σ_i = -Σ_j J_ij σ_j / h_i (Eq. 5 of the paper).
	Quadratic
)

// String implements fmt.Stringer.
func (s SelfReaction) String() string {
	switch s {
	case Linear:
		return "linear"
	case Quadratic:
		return "quadratic"
	default:
		return fmt.Sprintf("SelfReaction(%d)", int(s))
	}
}

// NoiseModel injects dynamic Gaussian disturbances at nodes and coupling
// units, reproducing the robustness study of Fig. 13. Sigma values are
// relative: the per-step disturbance is drawn as N(0, (sigma·scale)²) where
// scale is the nominal magnitude of the disturbed quantity.
type NoiseModel struct {
	// NodeSigma is the relative standard deviation of the voltage
	// disturbance added to every free node each step.
	NodeSigma float64
	// CouplerSigma is the relative standard deviation of the multiplicative
	// disturbance applied to coupling currents each step.
	CouplerSigma float64
	// RNG is the noise source. Required when either sigma is non-zero.
	RNG *rng.RNG
}

// Enabled reports whether any disturbance is configured.
func (n *NoiseModel) Enabled() bool {
	return n != nil && (n.NodeSigma > 0 || n.CouplerSigma > 0)
}

// Network is the coupled capacitor/resistor network.
//
// Dynamics (normalized units, C = Capacitance):
//
//	Linear:    C dσ_i/dt = Σ_j J_ij σ_j + h_i
//	Quadratic: C dσ_i/dt = Σ_j J_ij σ_j + h_i σ_i
//
// with σ clamped to [-VRail, +VRail] after every step, and dσ_i/dt = 0 for
// clamped (observed input) nodes.
type Network struct {
	N            int
	Self         SelfReaction
	Capacitance  float64
	VRail        float64
	J            *mat.CSR  // coupling conductances, diag-free
	H            []float64 // self-reaction conductances (Quadratic: must be < 0)
	Clamped      []bool    // true = node voltage held at its set value
	Noise        *NoiseModel
	couplingBuf  []float64
	noiseScaleJ  float64 // typical |J| row sum, cached for coupler noise
	noiseScaleJn bool
}

// Config collects the parameters for NewNetwork.
type Config struct {
	Self        SelfReaction
	Capacitance float64 // defaults to 1
	VRail       float64 // defaults to 1
	Noise       *NoiseModel
}

// NewNetwork builds a network of n nodes with coupling matrix j (converted
// to CSR with entries |v| <= 0 dropped) and self-reaction vector h.
// For the Quadratic self-reaction every h_i must be strictly negative: that
// is the convexity condition the training algorithm enforces, and the
// hardware realizes it as a passive resistor (conductance magnitude |h_i|).
func NewNetwork(j *mat.Dense, h []float64, cfg Config) (*Network, error) {
	n := j.Rows
	if j.Cols != n {
		return nil, fmt.Errorf("circuit: coupling matrix must be square, got %dx%d", j.Rows, j.Cols)
	}
	if len(h) != n {
		return nil, fmt.Errorf("circuit: len(h)=%d, want %d", len(h), n)
	}
	for i := 0; i < n; i++ {
		if j.At(i, i) != 0 {
			return nil, fmt.Errorf("circuit: coupling matrix has non-zero diagonal at %d (diag(J)=0 required)", i)
		}
	}
	if cfg.Self == Quadratic {
		for i, v := range h {
			if v >= 0 {
				return nil, fmt.Errorf("circuit: quadratic self-reaction requires h[%d] < 0, got %g", i, v)
			}
		}
	}
	if cfg.Capacitance == 0 {
		cfg.Capacitance = 1
	}
	if cfg.VRail == 0 {
		cfg.VRail = 1
	}
	if cfg.Noise.Enabled() && cfg.Noise.RNG == nil {
		return nil, fmt.Errorf("circuit: noise model enabled but RNG is nil")
	}
	nw := &Network{
		N:           n,
		Self:        cfg.Self,
		Capacitance: cfg.Capacitance,
		VRail:       cfg.VRail,
		J:           mat.FromDense(j, 0),
		H:           mat.CopyVec(h),
		Clamped:     make([]bool, n),
		Noise:       cfg.Noise,
	}
	// Precompute the coupler-noise scale so concurrent derivative
	// evaluations never write network state lazily.
	nw.noiseScaleJ = nw.typicalCoupling()
	nw.noiseScaleJn = true
	return nw, nil
}

// NewNetworkCSR is NewNetwork for a pre-built sparse coupling matrix.
// The matrix is used directly (not copied).
func NewNetworkCSR(j *mat.CSR, h []float64, cfg Config) (*Network, error) {
	if j.Rows != j.Cols {
		return nil, fmt.Errorf("circuit: coupling matrix must be square, got %dx%d", j.Rows, j.Cols)
	}
	if len(h) != j.Rows {
		return nil, fmt.Errorf("circuit: len(h)=%d, want %d", len(h), j.Rows)
	}
	if cfg.Self == Quadratic {
		for i, v := range h {
			if v >= 0 {
				return nil, fmt.Errorf("circuit: quadratic self-reaction requires h[%d] < 0, got %g", i, v)
			}
		}
	}
	if cfg.Capacitance == 0 {
		cfg.Capacitance = 1
	}
	if cfg.VRail == 0 {
		cfg.VRail = 1
	}
	if cfg.Noise.Enabled() && cfg.Noise.RNG == nil {
		return nil, fmt.Errorf("circuit: noise model enabled but RNG is nil")
	}
	nw := &Network{
		N:           j.Rows,
		Self:        cfg.Self,
		Capacitance: cfg.Capacitance,
		VRail:       cfg.VRail,
		J:           j,
		H:           mat.CopyVec(h),
		Clamped:     make([]bool, j.Rows),
		Noise:       cfg.Noise,
	}
	nw.noiseScaleJ = nw.typicalCoupling()
	nw.noiseScaleJn = true
	return nw, nil
}

// Clamp marks node i as an observed input whose voltage is held constant.
func (nw *Network) Clamp(i int) { nw.Clamped[i] = true }

// Release frees node i to evolve.
func (nw *Network) Release(i int) { nw.Clamped[i] = false }

// ClampSet clamps exactly the listed nodes, releasing all others.
func (nw *Network) ClampSet(nodes []int) {
	for i := range nw.Clamped {
		nw.Clamped[i] = false
	}
	for _, i := range nodes {
		nw.Clamped[i] = true
	}
}

// Dim implements ode.System.
func (nw *Network) Dim() int { return nw.N }

// Derivative implements ode.System: the node current balance of Eq. 8,
// using the network's own clamp set and internal coupling buffer. Not safe
// for concurrent use — concurrent inference goes through DerivativeMasked
// with caller-owned mask and scratch (how internal/dspu's per-state systems
// drive it).
func (nw *Network) Derivative(t float64, x, dst []float64) {
	if len(nw.couplingBuf) != nw.N {
		nw.couplingBuf = make([]float64, nw.N)
	}
	nw.DerivativeMasked(t, x, dst, nw.Clamped, nw.couplingBuf)
}

// DerivativeMasked is Derivative with a caller-provided clamp mask and
// coupling scratch buffer (length N). It writes no network state — provided
// the noise scale was precomputed (the constructors do) — so distinct
// callers with private masks and buffers may evaluate it concurrently on a
// shared network. The one remaining shared mutable resource is the noise
// RNG: a network with a noise model must not be evaluated concurrently.
func (nw *Network) DerivativeMasked(_ float64, x, dst []float64, clamped []bool, buf []float64) {
	nw.J.MulVec(x, buf)
	noisy := nw.Noise.Enabled()
	var cs, ns float64
	if noisy {
		cs = nw.Noise.CouplerSigma
		ns = nw.Noise.NodeSigma
		if !nw.noiseScaleJn {
			// Lazy fallback for literal-constructed networks; the
			// constructors precompute this so the concurrent path never
			// writes here.
			nw.noiseScaleJ = nw.typicalCoupling()
			nw.noiseScaleJn = true
		}
	}
	invC := 1 / nw.Capacitance
	for i := 0; i < nw.N; i++ {
		if clamped[i] {
			dst[i] = 0
			continue
		}
		coupling := buf[i]
		if noisy && cs > 0 {
			coupling += nw.Noise.RNG.NormScaled(0, cs*nw.noiseScaleJ)
		}
		var self float64
		switch nw.Self {
		case Linear:
			self = nw.H[i]
		case Quadratic:
			self = nw.H[i] * x[i]
		}
		d := invC * (coupling + self)
		if noisy && ns > 0 {
			d += nw.Noise.RNG.NormScaled(0, ns)
		}
		// Rails: once a node is at a rail, only inward current moves it.
		if x[i] >= nw.VRail && d > 0 {
			d = 0
		} else if x[i] <= -nw.VRail && d < 0 {
			d = 0
		}
		dst[i] = d
	}
}

// Residual evaluates the noise-free equilibrium residual max |dσ/dt| at x,
// skipping nodes marked in clamped. buf is caller-provided scratch of
// length N. This is the deterministic settle condition: disturbances are
// excluded so the quantity is reproducible from outside an anneal.
func (nw *Network) Residual(x []float64, clamped []bool, buf []float64) float64 {
	nw.J.MulVec(x, buf)
	invC := 1 / nw.Capacitance
	maxD := 0.0
	for i := 0; i < nw.N; i++ {
		if clamped[i] {
			continue
		}
		var self float64
		switch nw.Self {
		case Linear:
			self = nw.H[i]
		case Quadratic:
			self = nw.H[i] * x[i]
		}
		d := invC * (buf[i] + self)
		if x[i] >= nw.VRail && d > 0 {
			d = 0
		} else if x[i] <= -nw.VRail && d < 0 {
			d = 0
		}
		if a := math.Abs(d); a > maxD {
			maxD = a
		}
	}
	return maxD
}

// typicalCoupling estimates the nominal coupling-current magnitude, used to
// scale multiplicative coupler noise.
func (nw *Network) typicalCoupling() float64 {
	var sum float64
	for _, v := range nw.J.Val {
		sum += math.Abs(v)
	}
	if nw.N == 0 || len(nw.J.Val) == 0 {
		return 1
	}
	return sum / float64(nw.N)
}

// ClampRails limits the state vector to the rails in place. Integration
// drivers call this after every step.
func (nw *Network) ClampRails(x []float64) {
	mat.Clamp(x, -nw.VRail, nw.VRail)
}

// Energy evaluates the network Hamiltonian at state x:
//
//	Linear:    H = -Σ_{i<j+sym} J_ij σ_i σ_j - Σ h_i σ_i     (Ising, Eq. 1)
//	Quadratic: H = -Σ J_ij σ_i σ_j - Σ h_i σ_i²              (H_RV, Eq. 4)
//
// using the substituted (single-sum) convention of the paper where J already
// includes both (i,j) and (j,i) contributions.
func (nw *Network) Energy(x []float64) float64 {
	var e float64
	for i := 0; i < nw.N; i++ {
		for p := nw.J.RowPtr[i]; p < nw.J.RowPtr[i+1]; p++ {
			e -= 0.5 * nw.J.Val[p] * x[i] * x[nw.J.ColIdx[p]]
		}
	}
	for i, h := range nw.H {
		switch nw.Self {
		case Linear:
			e -= h * x[i]
		case Quadratic:
			e -= 0.5 * h * x[i] * x[i]
		}
	}
	return e
}

// Equilibrium returns the analytic fixed point for a Quadratic network with
// all-free nodes by solving (diag(h) + J) σ = 0 restricted to the free
// nodes with clamped values as boundary conditions. It uses Gauss-Seidel
// iteration (the same contraction the physics performs) and is used by
// tests to cross-check the ODE integration.
func (nw *Network) Equilibrium(x []float64, iters int) []float64 {
	if nw.Self != Quadratic {
		panic("circuit: Equilibrium requires quadratic self-reaction")
	}
	out := mat.CopyVec(x)
	for it := 0; it < iters; it++ {
		for i := 0; i < nw.N; i++ {
			if nw.Clamped[i] {
				continue
			}
			var s float64
			for p := nw.J.RowPtr[i]; p < nw.J.RowPtr[i+1]; p++ {
				s += nw.J.Val[p] * out[nw.J.ColIdx[p]]
			}
			v := -s / nw.H[i]
			if v > nw.VRail {
				v = nw.VRail
			} else if v < -nw.VRail {
				v = -nw.VRail
			}
			out[i] = v
		}
	}
	return out
}
