package circuit

import (
	"math"
	"testing"
	"testing/quick"

	"dsgl/internal/mat"
	"dsgl/internal/ode"
	"dsgl/internal/rng"
)

// twoNode builds a 2-node quadratic network with a single coupling j and
// self-reactions h0, h1.
func twoNode(t *testing.T, j, h0, h1 float64) *Network {
	t.Helper()
	jm := mat.NewDense(2, 2)
	jm.Set(0, 1, j)
	jm.Set(1, 0, j)
	nw, err := NewNetwork(jm, []float64{h0, h1}, Config{Self: Quadratic})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNewNetworkRejectsNonSquare(t *testing.T) {
	j := mat.NewDense(2, 3)
	if _, err := NewNetwork(j, []float64{-1, -1}, Config{Self: Quadratic}); err == nil {
		t.Fatal("expected error for non-square J")
	}
}

func TestNewNetworkRejectsDiagonal(t *testing.T) {
	j := mat.NewDense(2, 2)
	j.Set(0, 0, 1)
	if _, err := NewNetwork(j, []float64{-1, -1}, Config{Self: Quadratic}); err == nil {
		t.Fatal("expected error for non-zero diagonal")
	}
}

func TestNewNetworkRejectsPositiveH(t *testing.T) {
	j := mat.NewDense(2, 2)
	if _, err := NewNetwork(j, []float64{-1, 0.5}, Config{Self: Quadratic}); err == nil {
		t.Fatal("expected error for non-negative h under quadratic self-reaction")
	}
}

func TestLinearAllowsAnyH(t *testing.T) {
	j := mat.NewDense(2, 2)
	if _, err := NewNetwork(j, []float64{1, -1}, Config{Self: Linear}); err != nil {
		t.Fatalf("linear self-reaction should allow positive h: %v", err)
	}
}

func TestNoiseRequiresRNG(t *testing.T) {
	j := mat.NewDense(1, 1)
	_, err := NewNetwork(j, []float64{-1}, Config{
		Self:  Quadratic,
		Noise: &NoiseModel{NodeSigma: 0.1},
	})
	if err == nil {
		t.Fatal("expected error: noise without RNG")
	}
}

// TestQuadraticFixedPoint verifies Eq. 5: with node 0 clamped to v, node 1
// settles at -J*v/h1.
func TestQuadraticFixedPoint(t *testing.T) {
	nw := twoNode(t, 0.8, -1, -2)
	nw.Clamp(0)
	x := []float64{0.5, 0}
	ig := ode.NewEuler()
	tt := 0.0
	for s := 0; s < 4000; s++ {
		tt = ig.Step(nw, tt, 0.01, x)
		nw.ClampRails(x)
	}
	want := -0.8 * 0.5 / -2 // = 0.2
	if math.Abs(x[1]-want) > 1e-6 {
		t.Fatalf("node 1 settled at %g, want %g", x[1], want)
	}
	if x[0] != 0.5 {
		t.Fatalf("clamped node moved to %g", x[0])
	}
}

// TestLinearPolarizes verifies the binary limitation the paper fixes: with
// linear self-reaction the free node rides to a rail.
func TestLinearPolarizes(t *testing.T) {
	jm := mat.NewDense(2, 2)
	jm.Set(0, 1, 0.8)
	jm.Set(1, 0, 0.8)
	nw, err := NewNetwork(jm, []float64{0, 0}, Config{Self: Linear})
	if err != nil {
		t.Fatal(err)
	}
	nw.Clamp(0)
	x := []float64{0.5, 0.01}
	ig := ode.NewEuler()
	tt := 0.0
	for s := 0; s < 4000; s++ {
		tt = ig.Step(nw, tt, 0.01, x)
		nw.ClampRails(x)
	}
	if math.Abs(x[1]-1) > 1e-9 {
		t.Fatalf("linear node should polarize to +1, got %g", x[1])
	}
}

// TestEnergyMonotoneDescent verifies the Lyapunov property (Eq. 6): free
// evolution never increases H_RV.
func TestEnergyMonotoneDescent(t *testing.T) {
	r := rng.New(42)
	n := 12
	jm := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := r.NormScaled(0, 0.3)
			jm.Set(i, j, v)
			jm.Set(j, i, v)
		}
	}
	h := make([]float64, n)
	for i := range h {
		h[i] = -2 // strongly convex so the quadratic term dominates
	}
	nw, err := NewNetwork(jm, h, Config{Self: Quadratic})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	r.FillUniform(x, -0.9, 0.9)
	ig := ode.NewEuler()
	prev := nw.Energy(x)
	tt := 0.0
	for s := 0; s < 2000; s++ {
		tt = ig.Step(nw, tt, 0.005, x)
		nw.ClampRails(x)
		e := nw.Energy(x)
		if e > prev+1e-9 {
			t.Fatalf("energy increased at step %d: %g -> %g", s, prev, e)
		}
		prev = e
	}
}

func TestClampSetReleases(t *testing.T) {
	nw := twoNode(t, 0.5, -1, -1)
	nw.Clamp(0)
	nw.Clamp(1)
	nw.ClampSet([]int{1})
	if nw.Clamped[0] || !nw.Clamped[1] {
		t.Fatalf("ClampSet wrong: %v", nw.Clamped)
	}
	nw.Release(1)
	if nw.Clamped[1] {
		t.Fatal("Release failed")
	}
}

func TestRailsStopOutwardCurrent(t *testing.T) {
	nw := twoNode(t, 2.0, -0.5, -0.5)
	nw.Clamp(0)
	x := []float64{1.0, 1.0} // node 1 at rail; coupling pushes it further out
	dst := make([]float64, 2)
	nw.Derivative(0, x, dst)
	if dst[1] > 0 {
		t.Fatalf("outward current at rail must be zero, got %g", dst[1])
	}
}

func TestEquilibriumMatchesODE(t *testing.T) {
	r := rng.New(7)
	n := 8
	jm := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && r.Float64() < 0.5 {
				jm.Set(i, j, r.NormScaled(0, 0.2))
			}
		}
	}
	h := make([]float64, n)
	for i := range h {
		h[i] = -1.5
	}
	nw, err := NewNetwork(jm, h, Config{Self: Quadratic})
	if err != nil {
		t.Fatal(err)
	}
	nw.Clamp(0)
	nw.Clamp(1)
	x := make([]float64, n)
	x[0], x[1] = 0.4, -0.3
	eq := nw.Equilibrium(x, 200)

	xo := mat.CopyVec(x)
	ig := ode.NewEuler()
	tt := 0.0
	for s := 0; s < 20000; s++ {
		tt = ig.Step(nw, tt, 0.01, xo)
		nw.ClampRails(xo)
	}
	for i := 0; i < n; i++ {
		if math.Abs(eq[i]-xo[i]) > 1e-4 {
			t.Fatalf("node %d: Gauss-Seidel %g vs ODE %g", i, eq[i], xo[i])
		}
	}
}

func TestNoiseZeroSigmaIsDeterministic(t *testing.T) {
	var nm *NoiseModel
	if nm.Enabled() {
		t.Fatal("nil noise model must be disabled")
	}
	nm = &NoiseModel{}
	if nm.Enabled() {
		t.Fatal("zero-sigma noise model must be disabled")
	}
}

func TestNoisePerturbsTrajectory(t *testing.T) {
	mkNet := func(noise *NoiseModel) *Network {
		jm := mat.NewDense(2, 2)
		jm.Set(0, 1, 0.5)
		jm.Set(1, 0, 0.5)
		nw, err := NewNetwork(jm, []float64{-1, -1}, Config{Self: Quadratic, Noise: noise})
		if err != nil {
			t.Fatal(err)
		}
		nw.Clamp(0)
		return nw
	}
	run := func(nw *Network) float64 {
		x := []float64{0.5, 0}
		ig := ode.NewEuler()
		tt := 0.0
		for s := 0; s < 500; s++ {
			tt = ig.Step(nw, tt, 0.01, x)
			nw.ClampRails(x)
		}
		return x[1]
	}
	clean := run(mkNet(nil))
	noisy := run(mkNet(&NoiseModel{NodeSigma: 0.05, RNG: rng.New(1)}))
	if clean == noisy {
		t.Fatal("noise had no effect on trajectory")
	}
	// But small noise keeps the result near the fixed point (robustness,
	// Fig. 13's qualitative claim).
	if math.Abs(noisy-clean) > 0.2 {
		t.Fatalf("5%% noise moved result too far: clean %g noisy %g", clean, noisy)
	}
}

// TestEnergyQuadraticProperty: for random symmetric systems, the analytic
// gradient used by Derivative matches a finite-difference of Energy.
func TestDerivativeMatchesEnergyGradient(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(uint64(seed))
		n := 5
		jm := mat.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := r.NormScaled(0, 0.3)
				jm.Set(i, j, v)
				jm.Set(j, i, v)
			}
		}
		h := make([]float64, n)
		for i := range h {
			h[i] = -1 - r.Float64()
		}
		nw, err := NewNetwork(jm, h, Config{Self: Quadratic})
		if err != nil {
			return false
		}
		x := make([]float64, n)
		r.FillUniform(x, -0.5, 0.5)
		dst := make([]float64, n)
		nw.Derivative(0, x, dst)
		const eps = 1e-6
		for i := 0; i < n; i++ {
			xp := mat.CopyVec(x)
			xm := mat.CopyVec(x)
			xp[i] += eps
			xm[i] -= eps
			fd := (nw.Energy(xp) - nw.Energy(xm)) / (2 * eps)
			// dσ/dt = -(1/C) ∂H/∂σ with C = 1.
			if math.Abs(dst[i]+fd) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSelfReactionString(t *testing.T) {
	if Linear.String() != "linear" || Quadratic.String() != "quadratic" {
		t.Fatal("SelfReaction names changed")
	}
	if SelfReaction(9).String() == "" {
		t.Fatal("unknown self-reaction must stringify")
	}
}

func TestNewNetworkCSRValidation(t *testing.T) {
	j := mat.FromDense(mat.NewDense(2, 2), 0)
	if _, err := NewNetworkCSR(j, []float64{-1}, Config{Self: Quadratic}); err == nil {
		t.Fatal("expected error for h length mismatch")
	}
	if _, err := NewNetworkCSR(j, []float64{-1, 1}, Config{Self: Quadratic}); err == nil {
		t.Fatal("expected error for positive h")
	}
	bad := &mat.CSR{Rows: 2, Cols: 3, RowPtr: []int{0, 0, 0}}
	if _, err := NewNetworkCSR(bad, []float64{-1, -1}, Config{Self: Quadratic}); err == nil {
		t.Fatal("expected error for non-square")
	}
	if _, err := NewNetworkCSR(j, []float64{-1, -1}, Config{
		Self: Quadratic, Noise: &NoiseModel{CouplerSigma: 0.1},
	}); err == nil {
		t.Fatal("expected error for noise without RNG")
	}
	nw, err := NewNetworkCSR(j, []float64{-1, -1}, Config{Self: Quadratic})
	if err != nil {
		t.Fatal(err)
	}
	if nw.Capacitance != 1 || nw.VRail != 1 {
		t.Fatal("defaults not applied")
	}
}

func TestEquilibriumPanicsOnLinear(t *testing.T) {
	j := mat.NewDense(2, 2)
	nw, err := NewNetwork(j, []float64{0, 0}, Config{Self: Linear})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	nw.Equilibrium([]float64{0, 0}, 10)
}

func TestCouplerNoiseAlone(t *testing.T) {
	jm := mat.NewDense(2, 2)
	jm.Set(0, 1, 0.5)
	jm.Set(1, 0, 0.5)
	nw, err := NewNetwork(jm, []float64{-1, -1}, Config{
		Self:  Quadratic,
		Noise: &NoiseModel{CouplerSigma: 0.1, RNG: rng.New(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.5, 0}
	dst := make([]float64, 2)
	nw.Clamp(0)
	nw.Derivative(0, x, dst)
	// The deterministic derivative would be 0.5*0.5 - 0 = 0.25; with
	// coupler noise it differs but stays in the right neighbourhood.
	if dst[1] == 0.25 {
		t.Fatal("coupler noise had no effect")
	}
	if math.Abs(dst[1]-0.25) > 0.5 {
		t.Fatalf("coupler noise implausibly large: %g", dst[1])
	}
}
