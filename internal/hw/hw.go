// Package hw provides the analytic hardware cost models behind the paper's
// Table I (chip comparison: BRIM vs DSPU vs DS-GL) and Table III (latency
// and energy versus GNN accelerators and GPUs).
//
// The chip model is parametric — per-spin, per-coupler, per-ring, and
// per-PE digital-control costs — calibrated so the BRIM configuration
// reproduces its published 2000-spin / 250 mW / 5 mm² figures; DSPU and
// DS-GL costs then follow from the same constants plus their architectural
// deltas (circulative resistor rings; PE tiling with CU crossbars and
// digital schedulers).
//
// The accelerator model is the paper's own methodology: "the latency of GNN
// accelerators is reported based on their theoretical peak performance with
// full utilization" — FLOPs divided by peak TFLOPS, energy as latency times
// typical power. The GPU row instead carries an effective-utilization
// factor, reflecting that measured GNN inference on GPUs runs far below
// peak (sparse aggregation, kernel-launch overheads).
package hw

import "fmt"

// CostModel holds the calibrated per-component constants (45 nm, matching
// the paper's Cadence technology node).
type CostModel struct {
	NodePowerUW    float64 // analog node (capacitor + comparator) power, µW
	RingPowerUW    float64 // circulative resistor ring addition per node, µW
	CouplerPowerUW float64 // programmable coupler power, µW
	PEDigitalMW    float64 // routers + schedulers + buffers per PE, mW
	CUPowerPerMW   float64 // CU crossbar power per coupler, µW

	NodeAreaMM2    float64 // per node, mm²
	RingAreaMM2    float64 // ring addition per node, mm²
	CouplerAreaMM2 float64 // per coupler, mm²
	PEDigitalAMM2  float64 // digital control area per PE, mm²
	CUAreaPerMM2   float64 // CU crossbar area per coupler, mm²
}

// DefaultCostModel returns the constants calibrated against BRIM's
// published 2000-spin figures (250 mW, 5 mm²).
func DefaultCostModel() CostModel {
	return CostModel{
		NodePowerUW:    25,    // 2000 × 25 µW = 50 mW
		RingPowerUW:    5,     // DSPU-2000 adds 10 mW
		CouplerPowerUW: 0.05,  // 2000² × 0.05 µW = 200 mW
		PEDigitalMW:    6,     // schedulers, routers, map buffers
		CUPowerPerMW:   0.05,  // same coupler technology inside CUs
		NodeAreaMM2:    5e-4,  // 2000 × 5e-4 = 1 mm²
		RingAreaMM2:    4e-5,  // DSPU-2000 adds ~0.08 mm²
		CouplerAreaMM2: 1e-6,  // 2000² × 1e-6 = 4 mm²
		PEDigitalAMM2:  0.002, //
		CUAreaPerMM2:   5e-7,  // mini crossbars pack denser than the main array
	}
}

// ChipCost summarizes one chip configuration, mirroring Table I's columns.
type ChipCost struct {
	Name     string
	Spins    int
	PowerMW  float64
	AreaMM2  float64
	Scalable bool
	DataType string
}

// String renders a Table-I-style row.
func (c ChipCost) String() string {
	scal := "No"
	if c.Scalable {
		scal = "Yes"
	}
	return fmt.Sprintf("%-12s %6d spins  %7.1f mW  %5.2f mm²  scalable=%-3s  %s",
		c.Name, c.Spins, c.PowerMW, c.AreaMM2, scal, c.DataType)
}

// BRIMCost models the baseline binary Ising machine with an all-to-all
// n x n coupler crossbar.
func (m CostModel) BRIMCost(spins int) ChipCost {
	s := float64(spins)
	return ChipCost{
		Name:     "BRIM",
		Spins:    spins,
		PowerMW:  (s*m.NodePowerUW + s*s*m.CouplerPowerUW) / 1000,
		AreaMM2:  s*m.NodeAreaMM2 + s*s*m.CouplerAreaMM2,
		Scalable: false,
		DataType: "Binary",
	}
}

// DSPUCost models the Real-Valued DSPU: BRIM plus a circulative resistor
// ring per node.
func (m CostModel) DSPUCost(spins int) ChipCost {
	base := m.BRIMCost(spins)
	s := float64(spins)
	return ChipCost{
		Name:     fmt.Sprintf("DSPU-%d", spins),
		Spins:    spins,
		PowerMW:  base.PowerMW + s*m.RingPowerUW/1000,
		AreaMM2:  base.AreaMM2 + s*m.RingAreaMM2,
		Scalable: false,
		DataType: "Real-Value",
	}
}

// DSGLCost models the Scalable DSPU: a grid of PEs with per-PE K x K local
// crossbars (instead of one global n x n crossbar), CU crossbars at mesh
// intersections, and per-PE digital control.
func (m CostModel) DSGLCost(spins, peCapacity, lanes int) ChipCost {
	if peCapacity <= 0 {
		panic("hw: non-positive PE capacity")
	}
	pes := (spins + peCapacity - 1) / peCapacity
	gridW := 1
	for gridW*gridW < pes {
		gridW++
	}
	gridH := (pes + gridW - 1) / gridW
	cus := (gridW + 1) * (gridH + 1)
	cuCouplers := float64(4*lanes*3*lanes) * float64(cus)

	s := float64(spins)
	k := float64(peCapacity)
	localCouplers := float64(pes) * k * k

	power := s*(m.NodePowerUW+m.RingPowerUW)/1000 +
		localCouplers*m.CouplerPowerUW/1000 +
		float64(pes)*m.PEDigitalMW +
		cuCouplers*m.CUPowerPerMW/1000
	area := s*(m.NodeAreaMM2+m.RingAreaMM2) +
		localCouplers*m.CouplerAreaMM2 +
		float64(pes)*m.PEDigitalAMM2 +
		cuCouplers*m.CUAreaPerMM2
	return ChipCost{
		Name:     "DS-GL",
		Spins:    spins,
		PowerMW:  power,
		AreaMM2:  area,
		Scalable: true,
		DataType: "Real-Value",
	}
}

// Platform describes one comparison hardware target of Table III.
type Platform struct {
	Name string
	// Works lists the accelerator papers evaluated on this platform.
	Works         string
	PeakTFLOPS    float64
	MaxPowerW     float64
	TypicalPowerW float64
	// Utilization scales effective throughput. Accelerators use 1.0 (the
	// paper's full-utilization assumption); the GPU uses a sub-percent
	// effective utilization typical of measured sparse GNN inference.
	Utilization float64
}

// Platforms returns Table III's five hardware platforms.
func Platforms() []Platform {
	return []Platform{
		{Name: "Stratix 10 SX", Works: "AWB-GCN/I-GCN", PeakTFLOPS: 2.7, MaxPowerW: 215, TypicalPowerW: 137, Utilization: 1},
		{Name: "Alveo U200", Works: "NTGAT", PeakTFLOPS: 1.4, MaxPowerW: 225, TypicalPowerW: 100, Utilization: 1},
		{Name: "Alveo U250", Works: "GraphAGILE", PeakTFLOPS: 2.8, MaxPowerW: 225, TypicalPowerW: 110, Utilization: 1},
		{Name: "Alveo U280", Works: "RACE", PeakTFLOPS: 2.1, MaxPowerW: 225, TypicalPowerW: 100, Utilization: 1},
		{Name: "NVIDIA A100", Works: "GPU (measured-like)", PeakTFLOPS: 156, MaxPowerW: 400, TypicalPowerW: 250, Utilization: 0.002},
	}
}

// LatencyUs returns the inference latency in microseconds of a model
// requiring flops floating-point operations on platform p.
func (p Platform) LatencyUs(flops float64) float64 {
	return flops / (p.PeakTFLOPS * p.Utilization * 1e12) * 1e6
}

// EnergyMJ returns the energy per inference in millijoules at the
// platform's typical power.
func (p Platform) EnergyMJ(flops float64) float64 {
	seconds := p.LatencyUs(flops) / 1e6
	return seconds * p.TypicalPowerW * 1000
}

// DSGLEnergyMJ converts a DS-GL annealing latency into energy at the DS-GL
// chip power (the paper computes DS-GL energy exactly this way: 0.15 µs ×
// 550 mW ≈ 9e-5 mJ).
func DSGLEnergyMJ(latencyUs, chipPowerMW float64) float64 {
	return latencyUs / 1e6 * chipPowerMW
}

// ProgrammingModel estimates the one-time cost of configuring a dynamical
// system's coupling network — BRIM's Programming Units write the resistive
// crossbar column by column under the Column Select Unit, and the Scalable
// DSPU additionally loads the In-CU Weight Buffers. Configuration is paid
// once per trained model (inference then reuses the programmed couplers),
// so it amortizes across inferences; this model quantifies that overhead.
type ProgrammingModel struct {
	// ColumnWriteNs is the time to program one crossbar column (all rows
	// in parallel). 45 nm DAC settling ~ tens of ns.
	ColumnWriteNs float64
	// CouplerWriteEnergyPJ is the energy to program one coupler.
	CouplerWriteEnergyPJ float64
	// BufferLoadNsPerKB is the time to stream mapping metadata into the
	// PE-CU map and temporal buffers.
	BufferLoadNsPerKB float64
}

// DefaultProgrammingModel returns constants consistent with the 45 nm
// technology node of the cost model.
func DefaultProgrammingModel() ProgrammingModel {
	return ProgrammingModel{
		ColumnWriteNs:        50,
		CouplerWriteEnergyPJ: 2,
		BufferLoadNsPerKB:    100,
	}
}

// ProgrammingCost is the configuration overhead for one compiled mapping.
type ProgrammingCost struct {
	TimeUs   float64
	EnergyUJ float64
}

// DenseCost models programming a single K x K crossbar (BRIM or one PE).
func (p ProgrammingModel) DenseCost(nodes int) ProgrammingCost {
	cols := float64(nodes)
	couplers := float64(nodes) * float64(nodes)
	return ProgrammingCost{
		TimeUs:   cols * p.ColumnWriteNs / 1000,
		EnergyUJ: couplers * p.CouplerWriteEnergyPJ / 1e6,
	}
}

// ScalableCost models programming a Scalable DSPU mapping: every PE's
// local crossbar (programmed in parallel across PEs), the CU weight
// buffers (one entry per inter-PE coupling per slice), and the mapping
// metadata buffers.
func (p ProgrammingModel) ScalableCost(pes, peCapacity, interCouplings, slices int) ProgrammingCost {
	// PEs program concurrently: time is one crossbar, not pes crossbars.
	perPE := p.DenseCost(peCapacity)
	cuEntries := float64(interCouplings)
	metaKB := float64(interCouplings*8+slices*peCapacity*4) / 1024
	return ProgrammingCost{
		TimeUs: perPE.TimeUs +
			cuEntries*p.ColumnWriteNs/float64(max(1, pes))/1000 +
			metaKB*p.BufferLoadNsPerKB/1000,
		EnergyUJ: float64(pes)*perPE.EnergyUJ +
			cuEntries*p.CouplerWriteEnergyPJ/1e6,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
