package hw

import (
	"math"
	"strings"
	"testing"
)

func TestBRIMCalibration(t *testing.T) {
	// The model must reproduce BRIM's published 2000-spin figures.
	c := DefaultCostModel().BRIMCost(2000)
	if math.Abs(c.PowerMW-250) > 1 {
		t.Fatalf("BRIM-2000 power %g mW, want ~250", c.PowerMW)
	}
	if math.Abs(c.AreaMM2-5) > 0.05 {
		t.Fatalf("BRIM-2000 area %g mm², want ~5", c.AreaMM2)
	}
	if c.Scalable || c.DataType != "Binary" {
		t.Fatalf("BRIM descriptor wrong: %+v", c)
	}
}

func TestDSPUMinorOverhead(t *testing.T) {
	// Table I: DSPU-2000 ≈ 260 mW / 5.1 mm² — a few percent over BRIM.
	m := DefaultCostModel()
	brim := m.BRIMCost(2000)
	dspu := m.DSPUCost(2000)
	if math.Abs(dspu.PowerMW-260) > 2 {
		t.Fatalf("DSPU-2000 power %g mW, want ~260", dspu.PowerMW)
	}
	if math.Abs(dspu.AreaMM2-5.1) > 0.05 {
		t.Fatalf("DSPU-2000 area %g mm², want ~5.1", dspu.AreaMM2)
	}
	powOverhead := dspu.PowerMW/brim.PowerMW - 1
	if powOverhead < 0 || powOverhead > 0.1 {
		t.Fatalf("DSPU power overhead %g, want small positive", powOverhead)
	}
	if dspu.DataType != "Real-Value" {
		t.Fatal("DSPU must be real-valued")
	}
}

func TestDSGLScaling(t *testing.T) {
	// Table I: DS-GL runs 4x the spins (8000) at roughly 2x power and
	// ~30% more area than BRIM-2000.
	m := DefaultCostModel()
	brim := m.BRIMCost(2000)
	dsgl := m.DSGLCost(8000, 250, 30)
	if dsgl.Spins != 8000 || !dsgl.Scalable {
		t.Fatalf("DS-GL descriptor wrong: %+v", dsgl)
	}
	powRatio := dsgl.PowerMW / brim.PowerMW
	if powRatio < 1.8 || powRatio > 2.6 {
		t.Fatalf("DS-GL/BRIM power ratio %g, want ~2.2", powRatio)
	}
	areaRatio := dsgl.AreaMM2 / brim.AreaMM2
	if areaRatio < 1.2 || areaRatio > 1.45 {
		t.Fatalf("DS-GL/BRIM area ratio %g, want ~1.3", areaRatio)
	}
}

func TestDSGLCheaperThanDenseScaling(t *testing.T) {
	// The whole point of tiling: an 8000-spin dense DSPU would cost ~16x
	// BRIM's coupler budget; DS-GL must be far below that.
	m := DefaultCostModel()
	dense := m.DSPUCost(8000)
	tiled := m.DSGLCost(8000, 250, 30)
	if tiled.PowerMW >= dense.PowerMW/2 {
		t.Fatalf("tiled power %g not clearly below dense %g", tiled.PowerMW, dense.PowerMW)
	}
	if tiled.AreaMM2 >= dense.AreaMM2/2 {
		t.Fatalf("tiled area %g not clearly below dense %g", tiled.AreaMM2, dense.AreaMM2)
	}
}

func TestDSGLPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultCostModel().DSGLCost(8000, 0, 30)
}

func TestPlatformsTableIII(t *testing.T) {
	ps := Platforms()
	if len(ps) != 5 {
		t.Fatalf("want 5 platforms, got %d", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
		if p.PeakTFLOPS <= 0 || p.TypicalPowerW <= 0 || p.Utilization <= 0 {
			t.Fatalf("platform %s has invalid specs: %+v", p.Name, p)
		}
		if p.TypicalPowerW > p.MaxPowerW {
			t.Fatalf("platform %s typical power above max", p.Name)
		}
	}
	for _, want := range []string{"Stratix 10 SX", "Alveo U200", "Alveo U250", "Alveo U280", "NVIDIA A100"} {
		if !names[want] {
			t.Fatalf("missing platform %s", want)
		}
	}
}

func TestLatencyEnergyModel(t *testing.T) {
	p := Platform{Name: "x", PeakTFLOPS: 1, TypicalPowerW: 100, MaxPowerW: 200, Utilization: 1}
	// 1e9 FLOPs on 1 TFLOPS = 1 ms = 1000 µs.
	if got := p.LatencyUs(1e9); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("latency %g µs, want 1000", got)
	}
	// 1 ms at 100 W = 0.1 J = 100 mJ.
	if got := p.EnergyMJ(1e9); math.Abs(got-100) > 1e-9 {
		t.Fatalf("energy %g mJ, want 100", got)
	}
}

func TestGPUSlowerThanPeakAccelerators(t *testing.T) {
	// With measured-like utilization, the A100 row must show worse
	// latency than the full-utilization accelerators despite higher peak
	// FLOPS — matching Table III's ordering.
	ps := Platforms()
	var gpu, fpga Platform
	for _, p := range ps {
		switch p.Name {
		case "NVIDIA A100":
			gpu = p
		case "Stratix 10 SX":
			fpga = p
		}
	}
	const flops = 1e9
	if gpu.LatencyUs(flops) <= fpga.LatencyUs(flops) {
		t.Fatal("GPU (measured-like) should be slower than peak-utilization FPGA")
	}
}

func TestDSGLEnergyMatchesPaperFormula(t *testing.T) {
	// 0.15 µs at 550 mW ≈ 8.25e-5 mJ (paper reports 9e-5 for covid).
	got := DSGLEnergyMJ(0.15, 550)
	if math.Abs(got-8.25e-5) > 1e-9 {
		t.Fatalf("DS-GL energy %g mJ", got)
	}
}

func TestChipCostString(t *testing.T) {
	s := DefaultCostModel().BRIMCost(2000).String()
	for _, want := range []string{"BRIM", "2000", "Binary"} {
		if !strings.Contains(s, want) {
			t.Fatalf("ChipCost string %q missing %q", s, want)
		}
	}
}

func TestSpeedupAndPowerHeadlines(t *testing.T) {
	// The abstract's headline: DS-GL at µs latency vs GNN at ms latency is
	// a >= 10³x speedup, at a power two orders of magnitude below GPUs.
	gpu := Platforms()[4]
	gnnLatencyUs := gpu.LatencyUs(3e9) // a ~3 GFLOP paper-scale GNN
	dsglLatencyUs := 1.0
	if gnnLatencyUs/dsglLatencyUs < 1e3 {
		t.Fatalf("speedup only %gx", gnnLatencyUs/dsglLatencyUs)
	}
	dsgl := DefaultCostModel().DSGLCost(8000, 250, 30)
	if gpu.TypicalPowerW/(dsgl.PowerMW/1000) < 100 {
		t.Fatalf("power ratio only %g", gpu.TypicalPowerW/(dsgl.PowerMW/1000))
	}
}

func TestProgrammingDenseCost(t *testing.T) {
	p := DefaultProgrammingModel()
	c := p.DenseCost(2000)
	// 2000 columns x 50 ns = 100 µs; 4M couplers x 2 pJ = 8 µJ.
	if math.Abs(c.TimeUs-100) > 1e-9 {
		t.Fatalf("dense programming time %g µs", c.TimeUs)
	}
	if math.Abs(c.EnergyUJ-8) > 1e-9 {
		t.Fatalf("dense programming energy %g µJ", c.EnergyUJ)
	}
}

func TestProgrammingScalableCheaperTime(t *testing.T) {
	p := DefaultProgrammingModel()
	dense := p.DenseCost(8000)
	tiled := p.ScalableCost(32, 250, 5000, 4)
	if tiled.TimeUs >= dense.TimeUs {
		t.Fatalf("parallel PE programming %g µs should beat monolithic %g µs", tiled.TimeUs, dense.TimeUs)
	}
	if tiled.EnergyUJ <= 0 || tiled.TimeUs <= 0 {
		t.Fatal("non-positive programming cost")
	}
}

func TestProgrammingAmortizes(t *testing.T) {
	// Even including programming, a thousand inferences at ~1 µs each
	// keep DS-GL far below a single GNN inference on the GPU row.
	p := DefaultProgrammingModel()
	prog := p.ScalableCost(32, 250, 5000, 4)
	gpu := Platforms()[4]
	gnnLatency := gpu.LatencyUs(3e9)
	totalDSGL := prog.TimeUs + 1000*1.0
	if totalDSGL >= 1000*gnnLatency {
		t.Fatalf("amortized DS-GL %g µs not below GNN %g µs", totalDSGL, 1000*gnnLatency)
	}
}
